// RemoteShardClient — RrShardClient over the NDJSON shard line protocol.
//
// The router side of the multi-process plane: each client formats one
// request line per op (serve/shard_protocol.h), sends it through a
// LineTransport, and parses the single response line. Two transports:
//
//   InProcessTransport — loops a line straight through a
//     ShardWorkerSession. Zero I/O; the protocol tests use it to prove
//     the remote plane is bit-identical to LocalShardClient.
//   TcpLineTransport   — one blocking TCP connection to a
//     `tirm_server --mode=shard_worker` process.
//
// A remote client (like every RrShardClient) is driven by one coordinator
// thread at a time; the per-shard fan-out gives each shard its own client
// and therefore its own connection.

#ifndef TIRM_SERVE_SHARD_REMOTE_H_
#define TIRM_SERVE_SHARD_REMOTE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rrset/shard_client.h"
#include "serve/shard_worker.h"

namespace tirm {
namespace serve {

/// One request line out, one response line back (both without the
/// trailing newline).
class LineTransport {
 public:
  virtual ~LineTransport();
  [[nodiscard]] virtual Result<std::string> RoundTrip(
      const std::string& line) = 0;
};

/// Loops lines through an in-process worker session (no I/O). `session`
/// must outlive the transport.
class InProcessTransport final : public LineTransport {
 public:
  explicit InProcessTransport(ShardWorkerSession* session);
  [[nodiscard]] Result<std::string> RoundTrip(
      const std::string& line) override;

 private:
  ShardWorkerSession* session_;
};

/// Blocking newline-delimited exchange over one TCP connection.
class TcpLineTransport final : public LineTransport {
 public:
  /// Resolves `host` and connects to `port`.
  [[nodiscard]] static Result<std::unique_ptr<TcpLineTransport>> Connect(
      const std::string& host, int port);
  ~TcpLineTransport() override;

  [[nodiscard]] Result<std::string> RoundTrip(
      const std::string& line) override;

 private:
  explicit TcpLineTransport(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// See file comment.
class RemoteShardClient final : public RrShardClient {
 public:
  /// Takes ownership of `transport`. The shard coordinates are what the
  /// router believes this connection is; BeginRun cross-checks them
  /// against the worker's own identity.
  RemoteShardClient(std::unique_ptr<LineTransport> transport, int shard_index,
                    int num_shards);
  ~RemoteShardClient() override;

  int shard_index() const override { return shard_index_; }
  int num_shards() const override { return num_shards_; }
  [[nodiscard]] Status BeginRun(const ShardRunConfig& run) override;
  [[nodiscard]] Result<RrSampleStore::EnsureResult> EnsureSets(
      AdId ad, std::uint64_t global_min_sets,
      std::uint64_t global_already_attached) override;
  [[nodiscard]] Result<double> KptEstimate(AdId ad, std::uint64_t s,
                                           bool* cache_hit) override;
  [[nodiscard]] Status Attach(AdId ad, std::uint64_t global_count) override;
  [[nodiscard]] Result<ShardGainSummary> Summarize(
      AdId ad, std::uint32_t top_l) override;
  [[nodiscard]] Result<std::vector<std::uint32_t>> CoverageCounts(
      AdId ad, std::span<const NodeId> nodes) override;
  [[nodiscard]] Result<std::vector<std::uint32_t>> DenseCoverage(
      AdId ad) override;
  [[nodiscard]] Result<CoveredWordDelta> Commit(AdId ad, NodeId v) override;
  [[nodiscard]] Result<CoveredWordDelta> CommitOnRange(
      AdId ad, NodeId v, std::uint64_t global_first_set) override;
  [[nodiscard]] Status Retire(NodeId v) override;
  [[nodiscard]] Result<std::uint64_t> CoveredSets(AdId ad) override;
  [[nodiscard]] Result<ShardMemoryStats> MemoryStats() override;

 private:
  std::unique_ptr<LineTransport> transport_;
  const int shard_index_;
  const int num_shards_;
};

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_SHARD_REMOTE_H_
