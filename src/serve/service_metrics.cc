#include "serve/service_metrics.h"

#include <utility>

namespace tirm {
namespace serve {
namespace {

JsonValue LatencyJson(std::uint64_t count, double mean, double p50, double p95,
                      double p99, double max) {
  JsonValue v = JsonValue::Object();
  v.Set("count", JsonValue::Number(static_cast<double>(count)));
  v.Set("mean", JsonValue::Number(mean));
  v.Set("p50", JsonValue::Number(p50));
  v.Set("p95", JsonValue::Number(p95));
  v.Set("p99", JsonValue::Number(p99));
  v.Set("max", JsonValue::Number(max));
  return v;
}

}  // namespace

JsonValue ToJson(const MetricsSnapshot& s) {
  JsonValue root = JsonValue::Object();
  root.Set("received", JsonValue::Number(static_cast<double>(s.received)));
  root.Set("admitted", JsonValue::Number(static_cast<double>(s.admitted)));
  root.Set("rejected", JsonValue::Number(static_cast<double>(s.rejected)));
  root.Set("served_ok", JsonValue::Number(static_cast<double>(s.served_ok)));
  root.Set("failed", JsonValue::Number(static_cast<double>(s.failed)));
  root.Set("expired", JsonValue::Number(static_cast<double>(s.expired)));
  root.Set("queue", LatencyJson(s.queue_count, s.queue_mean, s.queue_p50,
                                s.queue_p95, s.queue_p99, s.queue_max));
  root.Set("serve", LatencyJson(s.serve_count, s.serve_mean, s.serve_p50,
                                s.serve_p95, s.serve_p99, s.serve_max));
  return root;
}

void ServiceMetrics::RecordExpired(double queue_seconds) {
  expired_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  queue_latency_.Record(queue_seconds);
}

void ServiceMetrics::RecordDropped(double queue_seconds) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  queue_latency_.Record(queue_seconds);
}

void ServiceMetrics::Reset() {
  received_.store(0, std::memory_order_relaxed);
  admitted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  served_ok_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  expired_.store(0, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  queue_latency_ = LatencyHistogram();
  serve_latency_ = LatencyHistogram();
}

void ServiceMetrics::RecordServed(double queue_seconds, double serve_seconds,
                                  bool ok) {
  (ok ? served_ok_ : failed_).fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  queue_latency_.Record(queue_seconds);
  serve_latency_.Record(serve_seconds);
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.received = received_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  MutexLock lock(mutex_);
  s.queue_count = queue_latency_.count();
  s.queue_mean = queue_latency_.mean();
  s.queue_p50 = queue_latency_.Quantile(0.50);
  s.queue_p95 = queue_latency_.Quantile(0.95);
  s.queue_p99 = queue_latency_.Quantile(0.99);
  s.queue_max = queue_latency_.max();
  s.serve_count = serve_latency_.count();
  s.serve_mean = serve_latency_.mean();
  s.serve_p50 = serve_latency_.Quantile(0.50);
  s.serve_p95 = serve_latency_.Quantile(0.95);
  s.serve_p99 = serve_latency_.Quantile(0.99);
  s.serve_max = serve_latency_.max();
  return s;
}

}  // namespace serve
}  // namespace tirm
