#include "serve/protocol.h"

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/metrics_registry.h"

namespace tirm {
namespace serve {
namespace {

// The closed key sets of the wire format — an unknown key is a client bug
// the client must hear about, not a silently ignored field (same policy as
// tirm_cli's flag set).
const std::set<std::string>& RequestKeys() {
  static const std::set<std::string> kKeys = {
      "id", "allocator", "config", "query", "timeout_ms", "profile", "stats"};
  return kKeys;
}

Result<bool> MemberBool(const JsonValue& obj, const std::string& key,
                        bool def) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return def;
  Result<bool> b = v->AsBool();
  if (!b.ok()) {
    return Status(b.status().code(),
                  std::string("field \"") + key + "\": " + b.status().message());
  }
  return b;
}

}  // namespace

const std::set<std::string>& RequestQueryKeys() {
  static const std::set<std::string> kKeys = {"kappa", "lambda", "beta",
                                              "budget_scale"};
  return kKeys;
}

const std::set<std::string>& RequestConfigKeys() {
  static const std::set<std::string> kKeys = {
      "max_total_seeds", "min_drop", "eps", "ell", "theta_cap", "theta_min",
      "kpt_max_samples", "threads", "weight_by_ctp",
      "exact_selection_fallback", "ctp_aware_coverage", "coverage_kernel",
      "sampler_kernel", "num_shards", "irie_alpha", "irie_rank_iterations",
      "irie_ap_truncation", "irie_max_push_hops", "mc_sims"};
  return kKeys;
}

namespace {

Status CheckKnownKeys(const JsonValue& object, const std::set<std::string>& known,
                      const char* where) {
  for (const JsonValue::Member& m : object.members()) {
    if (known.count(m.first) == 0) {
      return Status::InvalidArgument(std::string("unknown key \"") + m.first +
                                     "\" in " + where);
    }
  }
  return Status::OK();
}

/// Bridges a flat JSON object to Flags pairs so the request reuses the
/// exact strict parsers of the command line. Numbers contribute their raw
/// source token (no double round-trip loss), booleans "true"/"false".
Result<std::vector<std::pair<std::string, std::string>>> ToFlagPairs(
    const JsonValue& object, const char* where) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(object.members().size());
  for (const JsonValue::Member& m : object.members()) {
    std::string value;
    if (m.second.is_number()) {
      value = m.second.raw_number();
    } else if (m.second.is_bool()) {
      value = m.second.AsBool().value() ? "true" : "false";
    } else if (m.second.is_string()) {
      value = m.second.AsString().value();
    } else {
      return Status::InvalidArgument(std::string("key \"") + m.first +
                                     "\" in " + where +
                                     " must be a number, boolean, or string");
    }
    pairs.emplace_back(m.first, std::move(value));
  }
  return pairs;
}

Status FieldError(const char* field, const Status& status) {
  return Status(status.code(),
                std::string("field \"") + field + "\": " + status.message());
}

void WriteQuery(JsonWriter& w, const EngineQuery& query) {
  w.BeginObject();
  w.Field("kappa", query.kappa);
  w.Field("lambda", query.lambda);
  w.Field("beta", query.beta);
  w.Field("budget_scale", query.budget_scale);
  w.EndObject();
}

void WriteConfig(JsonWriter& w, const AllocatorConfig& c) {
  w.BeginObject();
  w.Field("max_total_seeds", c.max_total_seeds);
  w.Field("min_drop", c.min_drop);
  w.Field("eps", c.eps);
  w.Field("ell", c.ell);
  w.Field("theta_cap", std::uint64_t{c.theta_cap});
  w.Field("theta_min", std::uint64_t{c.theta_min});
  w.Field("kpt_max_samples", std::uint64_t{c.kpt_max_samples});
  w.Field("threads", c.num_threads);
  w.Field("weight_by_ctp", c.weight_by_ctp);
  w.Field("exact_selection_fallback", c.exact_selection_fallback);
  w.Field("ctp_aware_coverage", c.ctp_aware_coverage);
  w.Field("coverage_kernel", c.coverage_kernel);
  w.Field("sampler_kernel", c.sampler_kernel);
  w.Field("num_shards", c.num_shards);
  w.Field("irie_alpha", c.irie_alpha);
  w.Field("irie_rank_iterations", c.irie_rank_iterations);
  w.Field("irie_ap_truncation", c.irie_ap_truncation);
  w.Field("irie_max_push_hops", c.irie_max_push_hops);
  w.Field("mc_sims", c.mc_sims);
  w.EndObject();
}

// -- ParseResponse helpers: tolerant member readers (absent -> default).

Result<double> MemberDouble(const JsonValue& obj, const std::string& key,
                            double def) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return def;
  Result<double> d = v->AsDouble();
  if (!d.ok()) return FieldError(key.c_str(), d.status());
  return d;
}

Result<std::int64_t> MemberInt(const JsonValue& obj, const std::string& key,
                               std::int64_t def) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return def;
  Result<std::int64_t> i = v->AsInt();
  if (!i.ok()) return FieldError(key.c_str(), i.status());
  return i;
}

Result<std::string> MemberString(const JsonValue& obj, const std::string& key,
                                 std::string def) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return def;
  Result<std::string> s = v->AsString();
  if (!s.ok()) return FieldError(key.c_str(), s.status());
  return s;
}

}  // namespace

Result<AllocationRequest> ParseRequest(std::string_view line,
                                       const AllocationRequest& defaults) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  TIRM_RETURN_NOT_OK(CheckKnownKeys(root, RequestKeys(), "the request"));

  AllocationRequest request = defaults;
  request.config.sample_store = nullptr;  // serving engines own the stores
  request.config.sample_store_seed = 0;

  Result<std::string> id = MemberString(root, "id", defaults.id);
  if (!id.ok()) return id.status();
  request.id = *id;

  if (const JsonValue* config = root.Find("config")) {
    if (!config->is_object()) {
      return Status::InvalidArgument("\"config\" must be a JSON object");
    }
    TIRM_RETURN_NOT_OK(CheckKnownKeys(*config, RequestConfigKeys(), "\"config\""));
    Result<std::vector<std::pair<std::string, std::string>>> pairs =
        ToFlagPairs(*config, "\"config\"");
    if (!pairs.ok()) return pairs.status();
    // Reuse the command-line parsers verbatim, minus the environment: a
    // request must mean the same thing under any server environment.
    Result<AllocatorConfig> parsed_config = AllocatorConfig::FromFlags(
        Flags::FromPairs(*pairs, /*use_env=*/false), request.config);
    if (!parsed_config.ok()) return parsed_config.status();
    request.config = parsed_config.MoveValue();
  }

  Result<std::string> allocator =
      MemberString(root, "allocator", request.config.allocator);
  if (!allocator.ok()) return allocator.status();
  request.config.allocator = *allocator;
  TIRM_RETURN_NOT_OK(request.config.Validate());

  if (const JsonValue* query = root.Find("query")) {
    if (!query->is_object()) {
      return Status::InvalidArgument("\"query\" must be a JSON object");
    }
    TIRM_RETURN_NOT_OK(CheckKnownKeys(*query, RequestQueryKeys(), "\"query\""));
    Result<std::vector<std::pair<std::string, std::string>>> pairs =
        ToFlagPairs(*query, "\"query\"");
    if (!pairs.ok()) return pairs.status();
    Result<EngineQuery> parsed_query = EngineQuery::FromFlags(
        Flags::FromPairs(*pairs, /*use_env=*/false), request.query);
    if (!parsed_query.ok()) return parsed_query.status();
    request.query = *parsed_query;
  }

  Result<double> timeout = MemberDouble(root, "timeout_ms", defaults.timeout_ms);
  if (!timeout.ok()) return timeout.status();
  if (!(*timeout >= 0.0) || !std::isfinite(*timeout)) {  // rejects NaN too
    return Status::InvalidArgument(
        "\"timeout_ms\" must be finite and non-negative");
  }
  request.timeout_ms = *timeout;

  Result<bool> profile = MemberBool(root, "profile", defaults.profile);
  if (!profile.ok()) return profile.status();
  request.profile = *profile;
  Result<bool> stats = MemberBool(root, "stats", defaults.stats);
  if (!stats.ok()) return stats.status();
  request.stats = *stats;
  return request;
}

std::string RecoverRequestId(std::string_view line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed->is_object()) return "";
  const JsonValue* id = parsed->Find("id");
  if (id == nullptr || !id->is_string()) return "";
  return id->AsString().value();
}

std::string FormatRequest(const AllocationRequest& request) {
  JsonWriter w;
  w.BeginObject();
  w.Field("id", request.id);
  w.Field("allocator", request.config.allocator);
  w.Field("timeout_ms", request.timeout_ms);
  // Emitted only when set: the flags default to false on both ends, so
  // omission round-trips and pre-existing goldens stay byte-stable.
  if (request.profile) w.Field("profile", true);
  if (request.stats) w.Field("stats", true);
  w.Key("query");
  WriteQuery(w, request.query);
  w.Key("config");
  WriteConfig(w, request.config);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatResponse(const AllocationResponse& response) {
  JsonWriter w;
  w.BeginObject();
  w.Field("id", response.id);
  w.Field("ok", response.status.ok());
  if (response.worker >= 0) w.Field("worker", response.worker);
  w.Field("queue_ms", response.queue_ms);
  w.Field("serve_ms", response.serve_ms);
  if (!response.status.ok()) {
    w.Key("error");
    w.BeginObject();
    w.Field("code", StatusCodeName(response.status.code()));
    w.Field("message", response.status.message());
    w.EndObject();
    w.EndObject();
    return w.MoveStr();
  }

  const AllocationResult& result = response.run.result;
  w.Field("allocator", result.allocator);
  w.Key("allocation");
  w.BeginObject();
  w.Key("seeds");
  w.BeginArray();
  for (const std::vector<NodeId>& ad_seeds : result.allocation.seeds) {
    w.BeginArray();
    for (const NodeId v : ad_seeds) w.Uint(v);
    w.EndArray();
  }
  w.EndArray();
  w.Field("total_seeds", result.allocation.TotalSeeds());
  w.EndObject();

  w.Key("result");
  w.BeginObject();
  w.Field("seconds", result.seconds);
  w.Field("iterations", result.iterations);
  w.Field("total_rr_sets", std::uint64_t{result.total_rr_sets});
  w.Field("rr_memory_bytes", result.rr_memory_bytes);
  w.Field("total_estimated_revenue", result.TotalEstimatedRevenue());
  w.EndObject();

  const RegretReport& report = response.run.report;
  if (!report.ads.empty()) {  // evaluation ran
    w.Key("report");
    w.BeginObject();
    w.Field("total_regret", report.total_regret);
    w.Field("total_budget_regret", report.total_budget_regret);
    w.Field("total_seed_regret", report.total_seed_regret);
    w.Field("total_revenue", report.total_revenue);
    w.Field("total_budget", report.total_budget);
    w.Field("total_seeds", report.total_seeds);
    w.Field("distinct_targeted", report.distinct_targeted);
    w.EndObject();
  }

  if (!response.profile.empty()) {
    w.Key("profile");
    w.BeginArray();
    for (const StageTiming& stage : response.profile) {
      w.BeginObject();
      w.Field("name", stage.name);
      w.Field("count", stage.count);
      w.Field("total_ms", stage.total_ms);
      w.EndObject();
    }
    w.EndArray();
  }

  const SampleCacheStats& cache = result.cache;
  w.Key("cache");
  w.BeginObject();
  w.Field("reused_sets", std::uint64_t{cache.reused_sets});
  w.Field("sampled_sets", std::uint64_t{cache.sampled_sets});
  w.Field("top_ups", std::uint64_t{cache.top_ups});
  w.Field("kpt_cache_hits", std::uint64_t{cache.kpt_cache_hits});
  w.Field("kpt_estimations", std::uint64_t{cache.kpt_estimations});
  w.Field("arena_bytes", cache.arena_bytes);
  w.Field("view_bytes", cache.view_bytes);
  w.Field("shared_store", cache.shared_store);
  w.Field("max_traversal", std::uint64_t{cache.max_traversal});
  w.EndObject();

  w.EndObject();
  return w.MoveStr();
}

std::string FormatErrorResponse(const std::string& id, const Status& status) {
  AllocationResponse response;
  response.id = id;
  response.status = status.ok()
                        ? Status::Internal("error response with OK status")
                        : status;
  return FormatResponse(response);
}

std::string FormatStatsResponse(const std::string& id,
                                const AllocationService& service) {
  JsonValue root = JsonValue::Object();
  root.Set("id", JsonValue::String(id));
  root.Set("ok", JsonValue::Bool(true));
  JsonValue stats = service.StatsJson();
  stats.Set("registry", obs::MetricsRegistry::Global().ToJson());
  root.Set("stats", std::move(stats));
  return root.Dump();
}

Result<AllocationResponse> ParseResponse(std::string_view line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }

  AllocationResponse response;
  Result<std::string> id = MemberString(root, "id", "");
  if (!id.ok()) return id.status();
  response.id = *id;

  const JsonValue* ok = root.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::InvalidArgument("response missing boolean \"ok\"");
  }
  Result<std::int64_t> worker = MemberInt(root, "worker", -1);
  if (!worker.ok()) return worker.status();
  response.worker = static_cast<int>(*worker);
  Result<double> queue_ms = MemberDouble(root, "queue_ms", 0.0);
  if (!queue_ms.ok()) return queue_ms.status();
  response.queue_ms = *queue_ms;
  Result<double> serve_ms = MemberDouble(root, "serve_ms", 0.0);
  if (!serve_ms.ok()) return serve_ms.status();
  response.serve_ms = *serve_ms;

  if (!ok->AsBool().value()) {
    const JsonValue* error = root.Find("error");
    if (error == nullptr || !error->is_object()) {
      return Status::InvalidArgument(
          "error response missing \"error\" object");
    }
    Result<std::string> code = MemberString(*error, "code", "Internal");
    if (!code.ok()) return code.status();
    Result<std::string> message = MemberString(*error, "message", "");
    if (!message.ok()) return message.status();
    response.status = Status(StatusCodeFromName(*code), *message);
    if (response.status.ok()) {
      return Status::InvalidArgument("error response carries code OK");
    }
    return response;
  }

  response.status = Status::OK();
  if (const JsonValue* result = root.Find("result")) {
    if (!result->is_object()) {
      return Status::InvalidArgument("\"result\" must be an object");
    }
    Result<std::string> allocator = MemberString(root, "allocator", "");
    if (!allocator.ok()) return allocator.status();
    response.run.result.allocator = *allocator;
    Result<double> seconds = MemberDouble(*result, "seconds", 0.0);
    if (!seconds.ok()) return seconds.status();
    response.run.result.seconds = *seconds;
    Result<std::int64_t> iterations = MemberInt(*result, "iterations", 0);
    if (!iterations.ok()) return iterations.status();
    response.run.result.iterations = static_cast<std::size_t>(*iterations);
    Result<std::int64_t> rr = MemberInt(*result, "total_rr_sets", 0);
    if (!rr.ok()) return rr.status();
    response.run.result.total_rr_sets = static_cast<std::uint64_t>(*rr);
    Result<std::int64_t> bytes = MemberInt(*result, "rr_memory_bytes", 0);
    if (!bytes.ok()) return bytes.status();
    response.run.result.rr_memory_bytes = static_cast<std::size_t>(*bytes);
  }

  if (const JsonValue* allocation = root.Find("allocation")) {
    if (!allocation->is_object()) {
      return Status::InvalidArgument("\"allocation\" must be an object");
    }
    const JsonValue* seeds = allocation->Find("seeds");
    if (seeds == nullptr || !seeds->is_array()) {
      return Status::InvalidArgument("\"allocation.seeds\" must be an array");
    }
    auto& out = response.run.result.allocation.seeds;
    out.resize(seeds->size());
    for (std::size_t i = 0; i < seeds->size(); ++i) {
      const JsonValue& ad = (*seeds)[i];
      if (!ad.is_array()) {
        return Status::InvalidArgument("seed lists must be arrays");
      }
      out[i].reserve(ad.size());
      for (std::size_t j = 0; j < ad.size(); ++j) {
        Result<std::int64_t> v = ad[j].AsInt();
        if (!v.ok() || *v < 0 ||
            *v > static_cast<std::int64_t>(kInvalidNode)) {
          return Status::InvalidArgument("invalid node id in seeds");
        }
        out[i].push_back(static_cast<NodeId>(*v));
      }
    }
  }

  if (const JsonValue* report = root.Find("report")) {
    if (!report->is_object()) {
      return Status::InvalidArgument("\"report\" must be an object");
    }
    RegretReport& r = response.run.report;
    Result<double> v = MemberDouble(*report, "total_regret", 0.0);
    if (!v.ok()) return v.status();
    r.total_regret = *v;
    v = MemberDouble(*report, "total_budget_regret", 0.0);
    if (!v.ok()) return v.status();
    r.total_budget_regret = *v;
    v = MemberDouble(*report, "total_seed_regret", 0.0);
    if (!v.ok()) return v.status();
    r.total_seed_regret = *v;
    v = MemberDouble(*report, "total_revenue", 0.0);
    if (!v.ok()) return v.status();
    r.total_revenue = *v;
    v = MemberDouble(*report, "total_budget", 0.0);
    if (!v.ok()) return v.status();
    r.total_budget = *v;
    Result<std::int64_t> n = MemberInt(*report, "total_seeds", 0);
    if (!n.ok()) return n.status();
    r.total_seeds = static_cast<std::size_t>(*n);
    n = MemberInt(*report, "distinct_targeted", 0);
    if (!n.ok()) return n.status();
    r.distinct_targeted = static_cast<std::size_t>(*n);
  }

  if (const JsonValue* profile = root.Find("profile")) {
    if (!profile->is_array()) {
      return Status::InvalidArgument("\"profile\" must be an array");
    }
    response.profile.reserve(profile->size());
    for (std::size_t i = 0; i < profile->size(); ++i) {
      const JsonValue& entry = (*profile)[i];
      if (!entry.is_object()) {
        return Status::InvalidArgument("profile entries must be objects");
      }
      StageTiming stage;
      Result<std::string> name = MemberString(entry, "name", "");
      if (!name.ok()) return name.status();
      stage.name = *name;
      Result<std::int64_t> count = MemberInt(entry, "count", 0);
      if (!count.ok()) return count.status();
      stage.count = static_cast<std::uint64_t>(*count);
      Result<double> total_ms = MemberDouble(entry, "total_ms", 0.0);
      if (!total_ms.ok()) return total_ms.status();
      stage.total_ms = *total_ms;
      response.profile.push_back(std::move(stage));
    }
  }

  if (const JsonValue* cache = root.Find("cache")) {
    if (!cache->is_object()) {
      return Status::InvalidArgument("\"cache\" must be an object");
    }
    SampleCacheStats& c = response.run.result.cache;
    Result<std::int64_t> n = MemberInt(*cache, "reused_sets", 0);
    if (!n.ok()) return n.status();
    c.reused_sets = static_cast<std::uint64_t>(*n);
    n = MemberInt(*cache, "sampled_sets", 0);
    if (!n.ok()) return n.status();
    c.sampled_sets = static_cast<std::uint64_t>(*n);
    n = MemberInt(*cache, "top_ups", 0);
    if (!n.ok()) return n.status();
    c.top_ups = static_cast<std::uint64_t>(*n);
    n = MemberInt(*cache, "kpt_cache_hits", 0);
    if (!n.ok()) return n.status();
    c.kpt_cache_hits = static_cast<std::uint64_t>(*n);
    n = MemberInt(*cache, "kpt_estimations", 0);
    if (!n.ok()) return n.status();
    c.kpt_estimations = static_cast<std::uint64_t>(*n);
    n = MemberInt(*cache, "arena_bytes", 0);
    if (!n.ok()) return n.status();
    c.arena_bytes = static_cast<std::size_t>(*n);
    n = MemberInt(*cache, "view_bytes", 0);
    if (!n.ok()) return n.status();
    c.view_bytes = static_cast<std::size_t>(*n);
    n = MemberInt(*cache, "max_traversal", 0);
    if (!n.ok()) return n.status();
    c.max_traversal = static_cast<std::uint64_t>(*n);
    const JsonValue* shared = cache->Find("shared_store");
    if (shared != nullptr) {
      Result<bool> b = shared->AsBool();
      if (!b.ok()) return FieldError("shared_store", b.status());
      c.shared_store = *b;
    }
  }

  return response;
}

}  // namespace serve
}  // namespace tirm
