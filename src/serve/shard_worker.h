// Shard-worker side of the distributed TIRM plane.
//
// A `tirm_server --mode=shard_worker --shard_index=k --num_shards=K`
// process owns the shard-k slice of the global RR-sample pool for one
// mmap'ed bundle. ShardWorkerContext holds what outlives any connection:
// the query-independent base instance and a cache of shard-configured
// RrSampleStores keyed by the full store identity, so consecutive runs
// (and router reconnects) reuse warm pools exactly like the in-process
// engine does. ShardWorkerSession is one coordinator conversation: it
// turns each NDJSON request line into a response line by driving a
// LocalShardClient, with every failure reported in-band
// (serve/shard_protocol.h) — a worker never kills the connection over a
// bad request.
//
// Thread safety: the context is shared across sessions and its store
// cache is mutex-guarded, but one RrSampleStore must not serve two
// sessions concurrently (pool reads must not overlap top-ups — see
// rrset/sample_store.h). A worker process therefore serves one
// coordinator at a time; the session itself is single-threaded.

#ifndef TIRM_SERVE_SHARD_WORKER_H_
#define TIRM_SERVE_SHARD_WORKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rrset/sample_store.h"
#include "rrset/sampler_kernel.h"
#include "rrset/shard_client.h"
#include "topic/instance.h"

namespace tirm {
namespace serve {

/// Process-wide shard state shared by every session. `instance` must
/// outlive the context and is used only for query-independent data (ad
/// signatures, edge probabilities) — no query knob ever reaches a worker.
class ShardWorkerContext {
 public:
  ShardWorkerContext(const ProblemInstance* instance, int shard_index,
                     int num_shards);

  ShardWorkerContext(const ShardWorkerContext&) = delete;
  ShardWorkerContext& operator=(const ShardWorkerContext&) = delete;

  const ProblemInstance& instance() const { return *instance_; }
  int shard_index() const { return shard_index_; }
  int num_shards() const { return num_shards_; }

  /// The shard store for `run`'s store identity, created on first use.
  /// Pools are a pure function of (seed, threads, chunking, kernel, shard
  /// coordinates), so keying the cache by the first four (the coordinates
  /// are fixed per worker) keeps reuse bit-safe across runs.
  [[nodiscard]] RrSampleStore* GetOrCreateStore(const ShardRunConfig& run)
      TIRM_EXCLUDES(mutex_);

 private:
  using StoreKey = std::tuple<std::uint64_t, int, std::uint64_t, SamplerKernel>;

  const ProblemInstance* instance_;
  const int shard_index_;
  const int num_shards_;
  mutable Mutex mutex_;
  std::map<StoreKey, std::unique_ptr<RrSampleStore>> stores_
      TIRM_GUARDED_BY(mutex_);
};

/// One coordinator conversation (see file comment).
class ShardWorkerSession {
 public:
  explicit ShardWorkerSession(ShardWorkerContext* context);

  ShardWorkerSession(const ShardWorkerSession&) = delete;
  ShardWorkerSession& operator=(const ShardWorkerSession&) = delete;

  /// Serves one request line; always returns exactly one response line
  /// (errors travel in-band as {"ok":false,...}).
  std::string HandleLine(std::string_view line);

 private:
  /// HandleLine minus the error envelope: the Status of a failed op
  /// becomes the error response.
  Result<std::string> Dispatch(std::string_view line);

  ShardWorkerContext* context_;
  /// Bound by the "begin" op; ops before it are FailedPrecondition.
  std::unique_ptr<LocalShardClient> client_;
};

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_SHARD_WORKER_H_
