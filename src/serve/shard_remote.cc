#include "serve/shard_remote.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/json.h"
#include "serve/shard_protocol.h"

namespace tirm {
namespace serve {

LineTransport::~LineTransport() = default;

InProcessTransport::InProcessTransport(ShardWorkerSession* session)
    : session_(session) {
  TIRM_CHECK(session_ != nullptr);
}

Result<std::string> InProcessTransport::RoundTrip(const std::string& line) {
  return session_->HandleLine(line);
}

Result<std::unique_ptr<TcpLineTransport>> TcpLineTransport::Connect(
    const std::string& host, int port) {
  if (port <= 0 || port > 0xFFFF) {
    return Status::InvalidArgument("bad shard worker port " +
                                   std::to_string(port));
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const int rc = getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                             &hints, &resolved);
  if (rc != 0) {
    return Status::IOError("cannot resolve shard worker \"" + host +
                           "\": " + gai_strerror(rc));
  }
  int fd = -1;
  for (const addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(resolved);
  if (fd < 0) {
    return Status::IOError("cannot connect to shard worker " + host + ":" +
                           std::to_string(port) + ": " + std::strerror(errno));
  }
  return std::unique_ptr<TcpLineTransport>(new TcpLineTransport(fd));
}

TcpLineTransport::~TcpLineTransport() {
  if (fd_ >= 0) close(fd_);
}

Result<std::string> TcpLineTransport::RoundTrip(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = send(fd_, out.data() + sent, out.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError(std::string("shard send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    char chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IOError("shard worker closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

RemoteShardClient::RemoteShardClient(std::unique_ptr<LineTransport> transport,
                                     int shard_index, int num_shards)
    : transport_(std::move(transport)),
      shard_index_(shard_index),
      num_shards_(num_shards) {
  TIRM_CHECK(transport_ != nullptr);
  TIRM_CHECK(num_shards_ >= 1 && num_shards_ <= 64);
  TIRM_CHECK(shard_index_ >= 0 && shard_index_ < num_shards_);
}

RemoteShardClient::~RemoteShardClient() = default;

Status RemoteShardClient::BeginRun(const ShardRunConfig& run) {
  Result<std::string> line =
      transport_->RoundTrip(FormatBeginRequest(run, shard_index_,
                                               num_shards_));
  if (!line.ok()) return line.status();
  TIRM_RETURN_NOT_OK(ParseStatusResponse(*line));
  // Cross-check the worker's identity: a mis-wired --shards list (worker k
  // listening where the router expects shard m) must fail loudly here, not
  // as silently wrong pools.
  Result<JsonValue> payload = ParseJson(*line);
  if (!payload.ok()) return payload.status();
  const JsonValue* index = payload->Find("shard_index");
  const JsonValue* shards = payload->Find("num_shards");
  if (index == nullptr || shards == nullptr) {
    return Status::InvalidArgument("begin response missing shard identity");
  }
  Result<std::int64_t> index_value = index->AsInt();
  if (!index_value.ok()) return index_value.status();
  Result<std::int64_t> shards_value = shards->AsInt();
  if (!shards_value.ok()) return shards_value.status();
  if (*index_value != shard_index_ || *shards_value != num_shards_) {
    return Status::InvalidArgument(
        "shard identity mismatch: expected shard " +
        std::to_string(shard_index_) + "/" + std::to_string(num_shards_) +
        ", worker answered as " + std::to_string(*index_value) + "/" +
        std::to_string(*shards_value));
  }
  return Status::OK();
}

Result<RrSampleStore::EnsureResult> RemoteShardClient::EnsureSets(
    AdId ad, std::uint64_t global_min_sets,
    std::uint64_t global_already_attached) {
  Result<std::string> line = transport_->RoundTrip(
      FormatEnsureRequest(ad, global_min_sets, global_already_attached));
  if (!line.ok()) return line.status();
  return ParseEnsureResponse(*line);
}

Result<double> RemoteShardClient::KptEstimate(AdId ad, std::uint64_t s,
                                              bool* cache_hit) {
  Result<std::string> line = transport_->RoundTrip(FormatKptRequest(ad, s));
  if (!line.ok()) return line.status();
  Result<KptResponse> response = ParseKptResponse(*line);
  if (!response.ok()) return response.status();
  if (cache_hit != nullptr) *cache_hit = response->cache_hit;
  return response->kpt;
}

Status RemoteShardClient::Attach(AdId ad, std::uint64_t global_count) {
  Result<std::string> line =
      transport_->RoundTrip(FormatAttachRequest(ad, global_count));
  if (!line.ok()) return line.status();
  return ParseStatusResponse(*line);
}

Result<ShardGainSummary> RemoteShardClient::Summarize(AdId ad,
                                                      std::uint32_t top_l) {
  Result<std::string> line =
      transport_->RoundTrip(FormatSummaryRequest(ad, top_l));
  if (!line.ok()) return line.status();
  return ParseSummaryResponse(*line);
}

Result<std::vector<std::uint32_t>> RemoteShardClient::CoverageCounts(
    AdId ad, std::span<const NodeId> nodes) {
  Result<std::string> line =
      transport_->RoundTrip(FormatCountsRequest(ad, nodes));
  if (!line.ok()) return line.status();
  return ParseCountsResponse(*line);
}

Result<std::vector<std::uint32_t>> RemoteShardClient::DenseCoverage(AdId ad) {
  Result<std::string> line = transport_->RoundTrip(FormatDenseRequest(ad));
  if (!line.ok()) return line.status();
  return ParseCountsResponse(*line);
}

Result<CoveredWordDelta> RemoteShardClient::Commit(AdId ad, NodeId v) {
  Result<std::string> line = transport_->RoundTrip(FormatCommitRequest(ad, v));
  if (!line.ok()) return line.status();
  return ParseDeltaResponse(*line);
}

Result<CoveredWordDelta> RemoteShardClient::CommitOnRange(
    AdId ad, NodeId v, std::uint64_t global_first_set) {
  Result<std::string> line = transport_->RoundTrip(
      FormatCommitRangeRequest(ad, v, global_first_set));
  if (!line.ok()) return line.status();
  return ParseDeltaResponse(*line);
}

Status RemoteShardClient::Retire(NodeId v) {
  Result<std::string> line = transport_->RoundTrip(FormatRetireRequest(v));
  if (!line.ok()) return line.status();
  return ParseStatusResponse(*line);
}

Result<std::uint64_t> RemoteShardClient::CoveredSets(AdId ad) {
  Result<std::string> line = transport_->RoundTrip(FormatCoveredRequest(ad));
  if (!line.ok()) return line.status();
  return ParseCoveredResponse(*line);
}

Result<ShardMemoryStats> RemoteShardClient::MemoryStats() {
  Result<std::string> line = transport_->RoundTrip(FormatMemoryRequest());
  if (!line.ok()) return line.status();
  return ParseMemoryResponse(*line);
}

}  // namespace serve
}  // namespace tirm
