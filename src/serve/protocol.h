// Newline-delimited JSON protocol for the AllocationService.
//
// tirm_server speaks this on stdin/stdout (and per TCP connection): one
// request object per line in, one response object per line out. The codec
// is strict — unknown keys, malformed numerics, and out-of-range values
// are InvalidArgument errors, mirroring tirm_cli's closed flag set — and
// pure: request parsing never reads the process environment (server-level
// defaults are passed in explicitly).
//
// Request line (every field optional except that *some* allocator must
// resolve; unset fields take the server's defaults):
//
//   {"id":"q1","allocator":"tirm",
//    "query":{"kappa":2,"lambda":0.1,"beta":0,"budget_scale":1},
//    "config":{"eps":0.2,"theta_cap":262144,"threads":1},
//    "timeout_ms":5000}
//
// Two observability extensions ride on the same line format:
//   * "profile": true — the response additionally carries a
//     "profile":[{"name":"tirm_run","count":1,"total_ms":52.1},...] stage
//     breakdown of the engine run (obs::ProfileScope on the worker).
//   * "stats": true — an admin request; the server answers immediately
//     (never enqueued) with {"id":...,"ok":true,"stats":{...}} carrying
//     the service snapshot, store stats, and the process-wide
//     obs::MetricsRegistry dump. See FormatStatsResponse.
//
// `config` accepts exactly the AllocatorConfig flag names (eps, ell,
// theta_cap, theta_min, kpt_max_samples, threads, mc_sims, irie_*, ...);
// values go through the same strict parsers as the command line.
//
// Response line (always produced, errors in-band; never contains a raw
// newline):
//
//   {"id":"q1","ok":true,"worker":0,"queue_ms":0.1,"serve_ms":52.9,
//    "allocator":"tirm","allocation":{"seeds":[[4,2],[5]]},
//    "result":{"seconds":0.05,...},"report":{"total_regret":1.9,...},
//    "cache":{"reused_sets":8192,...}}
//   {"id":"q2","ok":false,"error":{"code":"NotFound",
//    "message":"unknown allocator \"nope\""}}
//
// ParseResponse inverts the serialized subset (per-ad diagnostics are not
// on the wire); FormatRequest/ParseRequest round-trip exactly.

#ifndef TIRM_SERVE_PROTOCOL_H_
#define TIRM_SERVE_PROTOCOL_H_

#include <set>
#include <string>
#include <string_view>

#include "serve/allocation_service.h"

namespace tirm {
namespace serve {

/// Parses one request line on top of `defaults` (the server's baseline
/// config/query/timeout; request fields override). Strict: malformed JSON,
/// unknown keys anywhere, bad numerics, and failed validation all error.
[[nodiscard]] Result<AllocationRequest> ParseRequest(
    std::string_view line, const AllocationRequest& defaults);

/// Best-effort id recovery from a line ParseRequest rejected: the string
/// "id" member if the line is a JSON object carrying one, else "". Lets
/// the server keep error responses correlatable whenever possible.
std::string RecoverRequestId(std::string_view line);

/// The closed key sets of the "config" / "query" request sub-objects
/// (exactly the AllocatorConfig / EngineQuery flag names). Exposed so
/// front-ends validating their own flag lists share one source of truth.
const std::set<std::string>& RequestConfigKeys();
const std::set<std::string>& RequestQueryKeys();

/// Serializes every request field (self-contained: parsing it back under
/// ANY defaults reproduces the request exactly).
std::string FormatRequest(const AllocationRequest& request);

/// One response line (no trailing newline). Errors travel in-band as
/// {"ok":false,"error":{...}}; the MC "report" object is present iff the
/// run was evaluated.
std::string FormatResponse(const AllocationResponse& response);

/// Error response for a line that could not be parsed into a request at
/// all (id is whatever could be recovered, often empty).
std::string FormatErrorResponse(const std::string& id, const Status& status);

/// Answer to a `"stats": true` admin request:
///   {"id":...,"ok":true,"stats":{"workers":...,"service":{...},
///    "store":{...},"registry":{...}}}
/// where "service"/"store" come from `service.StatsJson()` and "registry"
/// is the full obs::MetricsRegistry::Global() dump (which itself lists
/// every live service again under "providers" — the direct sections are
/// the one belonging to `service`).
std::string FormatStatsResponse(const std::string& id,
                                const AllocationService& service);

/// Inverts FormatResponse's serialized subset. Fields not on the wire
/// (per-ad stats, internal revenue vectors) come back default-initialized.
[[nodiscard]] Result<AllocationResponse> ParseResponse(std::string_view line);

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_PROTOCOL_H_
