#include "serve/allocation_service.h"

#include <utility>

#include "common/threading.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace tirm {
namespace serve {

std::vector<AllocationRequest> SweepRequest::Grid() const {
  std::vector<std::string> names = allocators;
  if (names.empty()) names.push_back(config.allocator);
  std::vector<AllocationRequest> grid;
  grid.reserve(names.size() * kappas.size() * lambdas.size() * betas.size() *
               budget_scales.size());
  for (const std::string& name : names) {
    for (const int kappa : kappas) {
      for (const double lambda : lambdas) {
        for (const double beta : betas) {
          for (const double budget_scale : budget_scales) {
            AllocationRequest r;
            r.config = config;
            r.config.allocator = name;
            r.query = {.kappa = kappa,
                       .lambda = lambda,
                       .beta = beta,
                       .budget_scale = budget_scale};
            r.timeout_ms = timeout_ms;
            r.id = id_prefix + "/" + std::to_string(grid.size()) + "/" + name;
            grid.push_back(std::move(r));
          }
        }
      }
    }
  }
  return grid;
}

AllocationService::AllocationService(InstanceFactory factory, Options options)
    : factory_(std::move(factory)),
      options_(options),
      num_workers_(ResolveThreadCount(options.num_workers)),
      queue_(options.queue_capacity) {
  TIRM_CHECK(factory_ != nullptr) << "AllocationService: null factory";
  registry_handle_ = obs::MetricsRegistry::Global().RegisterProvider(
      "serve.service", [this] { return StatsJson(); });
  if (options_.autostart) Start();
}

AllocationService::~AllocationService() { Stop(); }

void AllocationService::Start() {
  MutexLock lock(lifecycle_mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  // Build the per-worker engines sequentially: the factory need not be
  // thread-safe, and identical construction order keeps startup
  // deterministic. Engine construction is the service's warm-up cost;
  // queries never pay it.
  engines_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    engines_.push_back(
        std::make_unique<AdAllocEngine>(factory_(), options_.engine));
  }
  threads_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

void AllocationService::Stop() {
  // Claim the worker threads under the lock, then close and join without
  // it: joining must not hold lifecycle_mutex_ (workers briefly take it to
  // resolve their engine), and handing the vector out of the guarded state
  // keeps the capability analysis exact about who may touch threads_.
  std::vector<std::thread> workers;
  {
    MutexLock lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
    workers.swap(threads_);
  }
  queue_.Close();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  // Anything still queued was admitted but never dequeued (the service was
  // stopped without ever starting): answer in-band so no future is left
  // broken.
  while (std::optional<Job> job = queue_.Pop()) {
    const double waited =
        std::chrono::duration<double>(Clock::now() - job->admitted_at).count();
    AllocationResponse response;
    response.id = job->request.id;
    response.status =
        Status::Unavailable("service stopped before the request was served");
    response.queue_ms = waited * 1e3;
    metrics_.RecordDropped(waited);  // never ran: no serve-histogram sample
    job->promise.set_value(std::move(response));
  }
}

bool AllocationService::started() const {
  MutexLock lock(lifecycle_mutex_);
  return started_;
}

AllocationService::Job AllocationService::MakeJob(
    AllocationRequest request, std::future<AllocationResponse>* future) {
  Job job;
  job.request = std::move(request);
  job.admitted_at = Clock::now();
  *future = job.promise.get_future();
  return job;
}

Result<std::future<AllocationResponse>> AllocationService::Submit(
    AllocationRequest request) {
  std::future<AllocationResponse> future;
  Job job = MakeJob(std::move(request), &future);
  const Status admitted = queue_.TryPush(std::move(job));
  if (!admitted.ok()) {
    metrics_.RecordRejected();
    return admitted;
  }
  metrics_.RecordAdmitted();
  return future;
}

Result<std::future<AllocationResponse>> AllocationService::SubmitWait(
    AllocationRequest request) {
  std::future<AllocationResponse> future;
  Job job = MakeJob(std::move(request), &future);
  const Status admitted = queue_.PushWait(std::move(job));
  if (!admitted.ok()) {
    metrics_.RecordRejected();
    return admitted;
  }
  metrics_.RecordAdmitted();
  return future;
}

std::vector<AllocationResponse> AllocationService::SubmitSweep(
    const SweepRequest& sweep) {
  const std::vector<AllocationRequest> grid = sweep.Grid();
  std::vector<AllocationResponse> responses(grid.size());
  std::vector<std::pair<std::size_t, std::future<AllocationResponse>>> pending;
  pending.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    Result<std::future<AllocationResponse>> submitted = SubmitWait(grid[i]);
    if (!submitted.ok()) {
      responses[i].id = grid[i].id;
      responses[i].status = submitted.status();
      continue;
    }
    pending.emplace_back(i, submitted.MoveValue());
  }
  for (auto& [index, future] : pending) {
    responses[index] = future.get();
  }
  return responses;
}

SampleCacheStats AllocationService::StoreStats() const {
  SampleCacheStats total;
  MutexLock lock(lifecycle_mutex_);
  for (const std::unique_ptr<AdAllocEngine>& engine : engines_) {
    const RrSampleStore* store = engine->sample_store();
    if (store == nullptr) continue;
    const SampleCacheStats s = store->LifetimeStats();
    total.reused_sets += s.reused_sets;
    total.sampled_sets += s.sampled_sets;
    total.top_ups += s.top_ups;
    total.kpt_cache_hits += s.kpt_cache_hits;
    total.kpt_estimations += s.kpt_estimations;
    total.arena_bytes += s.arena_bytes;
    total.view_bytes += s.view_bytes;
    total.shared_store = true;
  }
  return total;
}

JsonValue AllocationService::StatsJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("workers", JsonValue::Number(num_workers_));
  root.Set("service", ToJson(Metrics()));
  const SampleCacheStats s = StoreStats();
  JsonValue store = JsonValue::Object();
  store.Set("reused_sets",
            JsonValue::Number(static_cast<double>(s.reused_sets)));
  store.Set("sampled_sets",
            JsonValue::Number(static_cast<double>(s.sampled_sets)));
  store.Set("top_ups", JsonValue::Number(static_cast<double>(s.top_ups)));
  store.Set("kpt_cache_hits",
            JsonValue::Number(static_cast<double>(s.kpt_cache_hits)));
  store.Set("kpt_estimations",
            JsonValue::Number(static_cast<double>(s.kpt_estimations)));
  store.Set("arena_bytes",
            JsonValue::Number(static_cast<double>(s.arena_bytes)));
  store.Set("view_bytes",
            JsonValue::Number(static_cast<double>(s.view_bytes)));
  store.Set("max_traversal",
            JsonValue::Number(static_cast<double>(s.max_traversal)));
  root.Set("store", std::move(store));
  return root;
}

const AdAllocEngine& AllocationService::engine(int w) const {
  MutexLock lock(lifecycle_mutex_);
  TIRM_CHECK(w >= 0 && static_cast<std::size_t>(w) < engines_.size())
      << "engine(" << w << "): service not started or index out of range";
  return *engines_[static_cast<std::size_t>(w)];
}

void AllocationService::WorkerLoop(int worker_index) {
  // Resolve this worker's engine under the lifecycle lock; the pointee is
  // stable for the service's lifetime (engines_ is append-only in Start()
  // and never shrunk), so the loop below runs lock-free on it.
  AdAllocEngine* engine_ptr = nullptr;
  {
    MutexLock lock(lifecycle_mutex_);
    engine_ptr = engines_[static_cast<std::size_t>(worker_index)].get();
  }
  AdAllocEngine& engine = *engine_ptr;
  while (std::optional<Job> job = queue_.Pop()) {
    const Clock::time_point dequeued_at = Clock::now();
    const double waited =
        std::chrono::duration<double>(dequeued_at - job->admitted_at).count();
    // The queue wait is a cross-thread phase (admitted on the client
    // thread, dequeued here), so it is emitted as an explicit event
    // rather than an RAII span.
    obs::EmitEvent("serve_queue", job->admitted_at, dequeued_at,
                   {{"worker", static_cast<double>(worker_index)}});
    AllocationResponse response;
    response.id = job->request.id;
    response.queue_ms = waited * 1e3;
    response.worker = worker_index;

    // Deadline admission at dequeue: an expired request is cheaper to
    // answer than to run, and the client has already given up on it.
    const double timeout_ms = job->request.timeout_ms;
    if (timeout_ms > 0.0 && waited * 1e3 > timeout_ms) {
      response.status = Status::DeadlineExceeded(
          "deadline of " + std::to_string(timeout_ms) + " ms passed after " +
          std::to_string(waited * 1e3) + " ms in queue");
      metrics_.RecordExpired(waited);
      static obs::Counter& miss_counter =
          obs::MetricsRegistry::Global().GetCounter("serve.deadline_misses");
      miss_counter.Increment();
      job->promise.set_value(std::move(response));
      continue;
    }

    double serve_seconds = 0.0;
    std::optional<Result<EngineRun>> run;
    obs::StageProfile stage_profile;
    {
      ScopedTimer serve_timer(serve_seconds);
      obs::TraceSpan span("serve_run");
      span.Counter("worker", worker_index);
      // Opt-in stage breakdown: the ProfileScope routes this thread's
      // spans into stage_profile for the duration of the engine run.
      std::optional<obs::ProfileScope> profile_scope;
      if (job->request.profile) profile_scope.emplace(&stage_profile);
      run.emplace(engine.Run(job->request.config, job->request.query));
    }
    response.serve_ms = serve_seconds * 1e3;
    if (run->ok()) {
      response.run = run->MoveValue();
      response.status = Status::OK();
    } else {
      response.status = run->status();
    }
    for (const obs::StageProfile::Stage& stage : stage_profile.stages()) {
      response.profile.push_back(
          StageTiming{stage.name, stage.count,
                      static_cast<double>(stage.total_ns) * 1e-6});
    }
    metrics_.RecordServed(waited, serve_seconds, response.status.ok());
    job->promise.set_value(std::move(response));
  }
}

}  // namespace serve
}  // namespace tirm
