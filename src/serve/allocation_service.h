// AllocationService — the concurrent query-serving layer over AdAllocEngine.
//
// One service owns a fixed pool of worker threads, a bounded request queue
// with admission control, and one AdAllocEngine per worker. Clients submit
// AllocationRequests (allocator name + config knobs + an EngineQuery) and
// receive AllocationResponses (the EngineRun plus queue/serve timings and
// the run's sample-cache stats) through futures, or fan a whole
// lambda/kappa/beta/budget grid through SubmitSweep and get ordered
// results back.
//
// Concurrency model: engine-per-worker sharding. Every worker builds its
// own engine from the same deterministic instance factory and engine
// options, so the engines are identical and a request's response is a pure
// function of the request — bit-identical to a direct engine.Run() no
// matter which worker serves it, how warm that worker's RR-sample store
// is (pooled == fresh is the store's own guarantee), or what else is being
// served concurrently. Sharding also keeps each pooled store
// single-consumer, which is what the store's read-vs-top-up contract
// requires (see api/ad_alloc_engine.h); the price is one instance + store
// copy per worker, the classic memory-for-throughput trade.
//
// Admission control: Submit() rejects with Status::Unavailable the moment
// the queue is full (overload shedding); SubmitWait()/SubmitSweep() apply
// backpressure instead. A request may carry a deadline (timeout_ms); it is
// checked when a worker dequeues the request, and an expired request is
// answered with DeadlineExceeded without running. Errors (unknown
// allocator, invalid config/query, engine failures) are returned in-band
// in AllocationResponse::status — the future always resolves.
//
//   AllocationService service(
//       [] { return BuildFigure1Instance(); },
//       {.num_workers = 4, .engine = {.eval_sims = 1000, .seed = 2015}});
//   auto pending = service.Submit({.id = "q1", .config = {...},
//                                  .query = {.lambda = 0.1}});
//   if (!pending.ok()) { /* queue full */ }
//   AllocationResponse r = pending->get();

#ifndef TIRM_SERVE_ALLOCATION_SERVICE_H_
#define TIRM_SERVE_ALLOCATION_SERVICE_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/ad_alloc_engine.h"
#include "api/allocator_config.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "datasets/dataset.h"
#include "obs/metrics_registry.h"
#include "serve/request_queue.h"
#include "serve/service_metrics.h"

namespace tirm {
namespace serve {

/// One allocation query on the wire. The response is a pure function of
/// this struct (given the service's engine options): the service never
/// consults ambient state, and `config.sample_store` is overridden by the
/// serving engine's own seed policy.
struct AllocationRequest {
  /// Client correlation tag, echoed in the response. Not interpreted.
  std::string id;
  /// Allocator name + knobs (api/allocator_config.h).
  AllocatorConfig config;
  /// The Problem-1 sweep point (kappa / lambda / beta / budget_scale).
  EngineQuery query;
  /// Deadline in milliseconds from submission, checked when a worker
  /// dequeues the request; 0 = no deadline.
  double timeout_ms = 0.0;
  /// Opt-in per-request profiling: the serving worker runs the engine
  /// under an obs::ProfileScope and attaches the stage-timing breakdown
  /// to the response. Purely observational — the allocation is unchanged.
  bool profile = false;
  /// Admin request: answered directly by the front-end (tirm_server) with
  /// the service/registry stats instead of entering the queue.
  bool stats = false;
};

/// One aggregated pipeline stage of a profiled request (see
/// AllocationRequest::profile): total wall time across `count` spans.
struct StageTiming {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

/// Outcome of one request. `run` is meaningful iff `status.ok()`.
struct AllocationResponse {
  std::string id;
  Status status;
  EngineRun run;  ///< allocation + diagnostics + MC report (+ run.result.cache)
  double queue_ms = 0.0;  ///< admission -> dequeue
  double serve_ms = 0.0;  ///< dequeue -> response
  int worker = -1;        ///< which worker served it (-1: never dequeued)
  /// Stage-timing breakdown; non-empty iff the request set `profile`.
  std::vector<StageTiming> profile;
};

/// A lambda/kappa/beta/budget grid to fan into the queue. Expansion order
/// (Grid(), and therefore the order of SubmitSweep results) is
/// deterministic: allocator-major, then kappa, lambda, beta, budget_scale.
struct SweepRequest {
  /// Base config; `allocators` (when non-empty) overrides its allocator
  /// name per grid axis.
  AllocatorConfig config;
  std::vector<std::string> allocators;  ///< empty = {config.allocator}
  std::vector<int> kappas = {1};
  std::vector<double> lambdas = {0.0};
  std::vector<double> betas = {0.0};
  std::vector<double> budget_scales = {1.0};
  double timeout_ms = 0.0;  ///< applied to every grid point
  std::string id_prefix = "sweep";

  /// The expanded request list; ids are "<id_prefix>/<index>/<allocator>".
  std::vector<AllocationRequest> Grid() const;
};

/// See file comment.
class AllocationService {
 public:
  /// Produces the problem instance every worker engine is built from.
  /// MUST be deterministic (identical BuiltInstance on every call — e.g.
  /// rebuild from a spec with a fixed seed): the service's response-purity
  /// guarantee is exactly the guarantee that the factory's output does not
  /// vary. Called sequentially from Start(), once per worker.
  using InstanceFactory = std::function<BuiltInstance()>;

  struct Options {
    /// Worker threads == engines (common/threading.h semantics: <= 0
    /// selects hardware concurrency; clamped to kMaxSamplingThreads).
    int num_workers = 0;
    /// Bounded request-queue capacity (admission control beyond it).
    std::size_t queue_capacity = 256;
    /// Engine knobs shared by every worker engine (seed policy, eval_sims,
    /// reuse_samples).
    EngineOptions engine;
    /// Start() from the constructor. Tests defer (autostart = false) to
    /// exercise admission control and deadline expiry deterministically.
    bool autostart = true;
  };

  AllocationService(InstanceFactory factory, Options options);
  ~AllocationService();  ///< Stop()s: drains admitted work, joins workers

  AllocationService(const AllocationService&) = delete;
  AllocationService& operator=(const AllocationService&) = delete;

  /// Builds the worker engines (sequentially, one factory call each) and
  /// launches the workers. Idempotent.
  void Start() TIRM_EXCLUDES(lifecycle_mutex_);

  /// Graceful shutdown: closes admission, serves everything already
  /// queued, joins the workers. Requests never dequeued (service stopped
  /// without Start()) are answered Unavailable in-band. Idempotent.
  void Stop() TIRM_EXCLUDES(lifecycle_mutex_);

  /// Non-blocking admission: Unavailable when the queue is full or the
  /// service is stopping — the typed reject IS the admission control.
  /// On success the future always resolves (errors arrive in-band).
  Result<std::future<AllocationResponse>> Submit(AllocationRequest request);

  /// Blocking admission: waits for queue space (backpressure);
  /// Unavailable only when the service is stopping.
  Result<std::future<AllocationResponse>> SubmitWait(AllocationRequest request);

  /// Fans `sweep.Grid()` into the queue with backpressure and gathers the
  /// responses in grid order. Requires a started service (workers must be
  /// draining, or a grid larger than the queue would deadlock).
  std::vector<AllocationResponse> SubmitSweep(const SweepRequest& sweep);

  MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// Zeroes the service metrics (counters + latency histograms). For
  /// measurement harnesses that warm the service up first and must not
  /// count warm-up traffic in the reported percentiles; call only while
  /// no requests are in flight.
  void ResetMetrics() { metrics_.Reset(); }

  /// Resolved worker count.
  int num_workers() const { return num_workers_; }
  bool started() const TIRM_EXCLUDES(lifecycle_mutex_);

  /// Aggregated lifetime sample-cache stats over every worker engine's
  /// store (arena bytes summed across the per-worker copies).
  SampleCacheStats StoreStats() const TIRM_EXCLUDES(lifecycle_mutex_);

  /// This service's stats section — worker count, the ServiceMetrics
  /// snapshot (serve::ToJson shape), and the aggregated store stats. The
  /// same payload the service publishes to obs::MetricsRegistry::Global()
  /// as its "serve.service" provider, and the protocol's `stats` admin
  /// request returns.
  JsonValue StatsJson() const TIRM_EXCLUDES(lifecycle_mutex_);

  /// Worker `w`'s engine (for goldens and stats; valid after Start()).
  const AdAllocEngine& engine(int w) const TIRM_EXCLUDES(lifecycle_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    AllocationRequest request;
    std::promise<AllocationResponse> promise;
    Clock::time_point admitted_at;
  };

  Job MakeJob(AllocationRequest request,
              std::future<AllocationResponse>* future);
  void WorkerLoop(int worker_index) TIRM_EXCLUDES(lifecycle_mutex_);

  InstanceFactory factory_;
  Options options_;
  int num_workers_;
  BoundedQueue<Job> queue_;
  ServiceMetrics metrics_;

  mutable Mutex lifecycle_mutex_;
  bool started_ TIRM_GUARDED_BY(lifecycle_mutex_) = false;
  bool stopped_ TIRM_GUARDED_BY(lifecycle_mutex_) = false;
  std::vector<std::unique_ptr<AdAllocEngine>> engines_
      TIRM_GUARDED_BY(lifecycle_mutex_);
  std::vector<std::thread> threads_ TIRM_GUARDED_BY(lifecycle_mutex_);

  // Last member: destroyed first, so the registry provider (which reads
  // metrics_ and the engines) unregisters before anything it captures dies.
  obs::MetricsRegistry::ProviderHandle registry_handle_;
};

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_ALLOCATION_SERVICE_H_
