#include "serve/shard_protocol.h"

#include <limits>
#include <set>
#include <utility>

#include "common/json.h"
#include "rrset/sampler_kernel.h"

namespace tirm {
namespace serve {
namespace {

Status FieldError(const char* field, const Status& status) {
  return Status(status.code(),
                std::string("field \"") + field + "\": " + status.message());
}

Status CheckKeys(const JsonValue& root, const std::set<std::string>& known,
                 const std::string& op) {
  // Closed key sets, like serve/protocol.h: an unknown key is router/worker
  // version skew the sender must hear about, not something to ignore.
  for (const JsonValue::Member& m : root.members()) {
    if (known.count(m.first) == 0) {
      return Status::InvalidArgument("unknown key \"" + m.first +
                                     "\" in shard op \"" + op + "\"");
    }
  }
  return Status::OK();
}

Result<std::int64_t> RequireInt(const JsonValue& root, const char* key,
                                std::int64_t lo, std::int64_t hi) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(std::string("missing field \"") + key +
                                   "\"");
  }
  Result<std::int64_t> i = v->AsInt();
  if (!i.ok()) return FieldError(key, i.status());
  if (*i < lo || *i > hi) {
    return Status::InvalidArgument(std::string("field \"") + key +
                                   "\" out of range: " + std::to_string(*i));
  }
  return i;
}

Result<std::uint64_t> RequireHexU64(const JsonValue& root, const char* key) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(std::string("missing field \"") + key +
                                   "\"");
  }
  Result<std::string> s = v->AsString();
  if (!s.ok()) return FieldError(key, s.status());
  Result<std::uint64_t> decoded = DecodeHexU64(*s);
  if (!decoded.ok()) return FieldError(key, decoded.status());
  return decoded;
}

// Plain-integer JSON fields stay exact in a double up to 2^53; anything
// that can exceed that travels as a hex string (see the header comment).
constexpr std::int64_t kMaxCount = std::int64_t{1} << 53;

Result<JsonValue> ParseEnvelope(std::string_view line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::InvalidArgument("shard response must be a JSON object");
  }
  const JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::InvalidArgument("shard response missing \"ok\"");
  }
  if (!ok->AsBool().value()) {
    // In-band error: reconstitute the Status the worker sent.
    std::string code = "Internal";
    std::string message = "shard worker error";
    if (const JsonValue* error = parsed->Find("error");
        error != nullptr && error->is_object()) {
      if (const JsonValue* c = error->Find("code"); c != nullptr) {
        if (Result<std::string> s = c->AsString(); s.ok()) code = *s;
      }
      if (const JsonValue* m = error->Find("message"); m != nullptr) {
        if (Result<std::string> s = m->AsString(); s.ok()) message = *s;
      }
    }
    return Status(StatusCodeFromName(code), message);
  }
  return parsed;
}

std::string FormatAdOp(const char* op, AdId ad) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", op);
  w.Field("ad", ad);
  w.EndObject();
  return w.MoveStr();
}

}  // namespace

std::string EncodeHexU64(std::uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  char buffer[19];  // "0x" + up to 16 digits + NUL
  char* p = buffer + sizeof(buffer) - 1;
  *p = '\0';
  do {
    *--p = kDigits[value & 0xF];
    value >>= 4;
  } while (value != 0);
  *--p = 'x';
  *--p = '0';
  return std::string(p);
}

Result<std::uint64_t> DecodeHexU64(std::string_view text) {
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' ||
      text[1] != 'x') {
    return Status::InvalidArgument("expected \"0x<hex>\" uint64, got \"" +
                                   std::string(text) + "\"");
  }
  std::uint64_t value = 0;
  for (const char c : text.substr(2)) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return Status::InvalidArgument("bad hex digit in \"" +
                                     std::string(text) + "\"");
    }
    value = value << 4 | digit;
  }
  return value;
}

// ------------------------------------------------------------- requests

std::string FormatBeginRequest(const ShardRunConfig& run, int shard_index,
                               int num_shards) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "begin");
  w.Field("num_ads", run.num_ads);
  w.Field("store_seed", EncodeHexU64(run.store_seed));
  w.Field("num_threads", run.num_threads);
  w.Field("chunk_sets", run.chunk_sets);
  w.Field("sampler_kernel", SamplerKernelName(run.sampler_kernel));
  w.Field("coverage_kernel", CoverageKernelName(run.coverage_kernel));
  w.Field("kpt_ell", run.kpt_ell);
  w.Field("kpt_max_samples", run.kpt_max_samples);
  w.Field("shard_index", shard_index);
  w.Field("num_shards", num_shards);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatEnsureRequest(AdId ad, std::uint64_t min_sets,
                                std::uint64_t attached) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "ensure");
  w.Field("ad", ad);
  w.Field("min_sets", min_sets);
  w.Field("attached", attached);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatKptRequest(AdId ad, std::uint64_t s) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "kpt");
  w.Field("ad", ad);
  w.Field("s", s);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatAttachRequest(AdId ad, std::uint64_t count) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "attach");
  w.Field("ad", ad);
  w.Field("count", count);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatSummaryRequest(AdId ad, std::uint32_t top_l) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "summary");
  w.Field("ad", ad);
  w.Field("top_l", std::uint64_t{top_l});
  w.EndObject();
  return w.MoveStr();
}

std::string FormatCountsRequest(AdId ad, std::span<const NodeId> nodes) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "counts");
  w.Field("ad", ad);
  w.Key("nodes");
  w.BeginArray();
  for (const NodeId v : nodes) w.Uint(v);
  w.EndArray();
  w.EndObject();
  return w.MoveStr();
}

std::string FormatDenseRequest(AdId ad) { return FormatAdOp("dense", ad); }

std::string FormatCommitRequest(AdId ad, NodeId node) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "commit");
  w.Field("ad", ad);
  w.Field("node", std::uint64_t{node});
  w.EndObject();
  return w.MoveStr();
}

std::string FormatCommitRangeRequest(AdId ad, NodeId node,
                                     std::uint64_t first_set) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "commit_range");
  w.Field("ad", ad);
  w.Field("node", std::uint64_t{node});
  w.Field("first_set", first_set);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatRetireRequest(NodeId node) {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "retire");
  w.Field("node", std::uint64_t{node});
  w.EndObject();
  return w.MoveStr();
}

std::string FormatCoveredRequest(AdId ad) { return FormatAdOp("covered", ad); }

std::string FormatMemoryRequest() {
  JsonWriter w;
  w.BeginObject();
  w.Field("op", "memory");
  w.EndObject();
  return w.MoveStr();
}

Result<ShardOpRequest> ParseShardRequest(std::string_view line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("shard request must be a JSON object");
  }
  const JsonValue* op_value = root.Find("op");
  if (op_value == nullptr) {
    return Status::InvalidArgument("shard request missing \"op\"");
  }
  Result<std::string> op = op_value->AsString();
  if (!op.ok()) return FieldError("op", op.status());

  ShardOpRequest request;
  request.op = *op;

  const auto require_ad = [&root, &request]() -> Status {
    Result<std::int64_t> ad =
        RequireInt(root, "ad", 0, std::numeric_limits<AdId>::max());
    if (!ad.ok()) return ad.status();
    request.ad = static_cast<AdId>(*ad);
    return Status::OK();
  };
  const auto require_node = [&root, &request]() -> Status {
    Result<std::int64_t> node =
        RequireInt(root, "node", 0, std::numeric_limits<NodeId>::max());
    if (!node.ok()) return node.status();
    request.node = static_cast<NodeId>(*node);
    return Status::OK();
  };

  if (request.op == "begin") {
    static const std::set<std::string> kKeys = {
        "op",          "num_ads",        "store_seed",      "num_threads",
        "chunk_sets",  "sampler_kernel", "coverage_kernel", "kpt_ell",
        "kpt_max_samples", "shard_index", "num_shards"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    Result<std::int64_t> num_ads = RequireInt(root, "num_ads", 0, 1 << 20);
    if (!num_ads.ok()) return num_ads.status();
    request.run.num_ads = static_cast<int>(*num_ads);
    Result<std::uint64_t> seed = RequireHexU64(root, "store_seed");
    if (!seed.ok()) return seed.status();
    request.run.store_seed = *seed;
    Result<std::int64_t> threads = RequireInt(root, "num_threads", 1, 1 << 10);
    if (!threads.ok()) return threads.status();
    request.run.num_threads = static_cast<int>(*threads);
    Result<std::int64_t> chunk = RequireInt(root, "chunk_sets", 1, kMaxCount);
    if (!chunk.ok()) return chunk.status();
    request.run.chunk_sets = static_cast<std::uint64_t>(*chunk);
    const JsonValue* sampler = root.Find("sampler_kernel");
    if (sampler == nullptr) {
      return Status::InvalidArgument("missing field \"sampler_kernel\"");
    }
    Result<std::string> sampler_name = sampler->AsString();
    if (!sampler_name.ok()) {
      return FieldError("sampler_kernel", sampler_name.status());
    }
    Result<SamplerKernel> sampler_kernel = ParseSamplerKernel(*sampler_name);
    if (!sampler_kernel.ok()) {
      return FieldError("sampler_kernel", sampler_kernel.status());
    }
    request.run.sampler_kernel = *sampler_kernel;
    const JsonValue* coverage = root.Find("coverage_kernel");
    if (coverage == nullptr) {
      return Status::InvalidArgument("missing field \"coverage_kernel\"");
    }
    Result<std::string> coverage_name = coverage->AsString();
    if (!coverage_name.ok()) {
      return FieldError("coverage_kernel", coverage_name.status());
    }
    Result<CoverageKernel> coverage_kernel =
        ParseCoverageKernel(*coverage_name);
    if (!coverage_kernel.ok()) {
      return FieldError("coverage_kernel", coverage_kernel.status());
    }
    request.run.coverage_kernel = *coverage_kernel;
    const JsonValue* ell = root.Find("kpt_ell");
    if (ell == nullptr) {
      return Status::InvalidArgument("missing field \"kpt_ell\"");
    }
    Result<double> ell_value = ell->AsDouble();
    if (!ell_value.ok()) return FieldError("kpt_ell", ell_value.status());
    request.run.kpt_ell = *ell_value;
    Result<std::int64_t> kpt_max =
        RequireInt(root, "kpt_max_samples", 1, kMaxCount);
    if (!kpt_max.ok()) return kpt_max.status();
    request.run.kpt_max_samples = static_cast<std::uint64_t>(*kpt_max);
    Result<std::int64_t> shard = RequireInt(root, "shard_index", 0, 63);
    if (!shard.ok()) return shard.status();
    request.shard_index = static_cast<int>(*shard);
    Result<std::int64_t> shards = RequireInt(root, "num_shards", 1, 64);
    if (!shards.ok()) return shards.status();
    request.num_shards = static_cast<int>(*shards);
    if (request.shard_index >= request.num_shards) {
      return Status::InvalidArgument("shard_index >= num_shards");
    }
    return request;
  }
  if (request.op == "ensure") {
    static const std::set<std::string> kKeys = {"op", "ad", "min_sets",
                                                "attached"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    Result<std::int64_t> min_sets = RequireInt(root, "min_sets", 0, kMaxCount);
    if (!min_sets.ok()) return min_sets.status();
    request.min_sets = static_cast<std::uint64_t>(*min_sets);
    Result<std::int64_t> attached = RequireInt(root, "attached", 0, kMaxCount);
    if (!attached.ok()) return attached.status();
    request.attached = static_cast<std::uint64_t>(*attached);
    return request;
  }
  if (request.op == "kpt") {
    static const std::set<std::string> kKeys = {"op", "ad", "s"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    Result<std::int64_t> s = RequireInt(root, "s", 1, kMaxCount);
    if (!s.ok()) return s.status();
    request.s = static_cast<std::uint64_t>(*s);
    return request;
  }
  if (request.op == "attach") {
    static const std::set<std::string> kKeys = {"op", "ad", "count"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    Result<std::int64_t> count = RequireInt(root, "count", 0, kMaxCount);
    if (!count.ok()) return count.status();
    request.count = static_cast<std::uint64_t>(*count);
    return request;
  }
  if (request.op == "summary") {
    static const std::set<std::string> kKeys = {"op", "ad", "top_l"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    Result<std::int64_t> top_l = RequireInt(root, "top_l", 0, 0xFFFFFFFFll);
    if (!top_l.ok()) return top_l.status();
    request.top_l = static_cast<std::uint32_t>(*top_l);
    return request;
  }
  if (request.op == "counts") {
    static const std::set<std::string> kKeys = {"op", "ad", "nodes"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    const JsonValue* nodes = root.Find("nodes");
    if (nodes == nullptr || !nodes->is_array()) {
      return Status::InvalidArgument("\"counts\" needs a \"nodes\" array");
    }
    request.nodes.reserve(nodes->size());
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      Result<std::int64_t> v = (*nodes)[i].AsInt();
      if (!v.ok()) return FieldError("nodes", v.status());
      if (*v < 0 || *v > std::numeric_limits<NodeId>::max()) {
        return Status::InvalidArgument("node id out of range");
      }
      request.nodes.push_back(static_cast<NodeId>(*v));
    }
    return request;
  }
  if (request.op == "dense" || request.op == "covered") {
    static const std::set<std::string> kKeys = {"op", "ad"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    return request;
  }
  if (request.op == "commit") {
    static const std::set<std::string> kKeys = {"op", "ad", "node"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    TIRM_RETURN_NOT_OK(require_node());
    return request;
  }
  if (request.op == "commit_range") {
    static const std::set<std::string> kKeys = {"op", "ad", "node",
                                                "first_set"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_ad());
    TIRM_RETURN_NOT_OK(require_node());
    Result<std::int64_t> first = RequireInt(root, "first_set", 0, kMaxCount);
    if (!first.ok()) return first.status();
    request.first_set = static_cast<std::uint64_t>(*first);
    return request;
  }
  if (request.op == "retire") {
    static const std::set<std::string> kKeys = {"op", "node"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    TIRM_RETURN_NOT_OK(require_node());
    return request;
  }
  if (request.op == "memory") {
    static const std::set<std::string> kKeys = {"op"};
    TIRM_RETURN_NOT_OK(CheckKeys(root, kKeys, request.op));
    return request;
  }
  return Status::InvalidArgument("unknown shard op \"" + request.op + "\"");
}

// ------------------------------------------------------------ responses

std::string FormatShardErrorResponse(const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", false);
  w.Key("error");
  w.BeginObject();
  w.Field("code", StatusCodeName(status.code()));
  w.Field("message", status.message());
  w.EndObject();
  w.EndObject();
  return w.MoveStr();
}

std::string FormatOkResponse() {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatBeginResponse(int shard_index, int num_shards) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("shard_index", shard_index);
  w.Field("num_shards", num_shards);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatEnsureResponse(const RrSampleStore::EnsureResult& ensured) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("had_before", ensured.had_before);
  w.Field("sampled", ensured.sampled);
  w.Field("reused", ensured.reused);
  w.Field("max_traversal", ensured.max_traversal);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatKptResponse(double kpt, bool cache_hit) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("kpt", kpt);
  w.Field("cache_hit", cache_hit);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatSummaryResponse(const ShardGainSummary& summary) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("shard", summary.shard);
  w.Key("top");
  w.BeginArray();
  for (const ShardGainCandidate& c : summary.top) {
    w.BeginArray();
    w.Uint(c.node);
    w.Uint(c.coverage);
    w.EndArray();
  }
  w.EndArray();
  w.Field("unlisted_bound", std::uint64_t{summary.unlisted_bound});
  w.Field("covered_sets", summary.covered_sets);
  w.Field("attached_sets", summary.attached_sets);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatCountsResponse(const std::vector<std::uint32_t>& counts) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Key("counts");
  w.BeginArray();
  for (const std::uint32_t c : counts) w.Uint(c);
  w.EndArray();
  w.EndObject();
  return w.MoveStr();
}

std::string FormatDeltaResponse(const CoveredWordDelta& delta) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("newly_covered", delta.newly_covered);
  w.Key("words");
  w.BeginArray();
  for (const auto& [word, bits] : delta.words) {
    w.BeginArray();
    w.Uint(word);
    w.String(EncodeHexU64(bits));  // full 64-bit pattern: hex, not double
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
  return w.MoveStr();
}

std::string FormatCoveredResponse(std::uint64_t covered_sets) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("covered_sets", covered_sets);
  w.EndObject();
  return w.MoveStr();
}

std::string FormatMemoryResponse(const ShardMemoryStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ok", true);
  w.Field("arena_bytes", std::uint64_t{stats.arena_bytes});
  w.Field("view_bytes", std::uint64_t{stats.view_bytes});
  w.EndObject();
  return w.MoveStr();
}

Status ParseStatusResponse(std::string_view line) {
  return ParseEnvelope(line).status();
}

Result<RrSampleStore::EnsureResult> ParseEnsureResponse(
    std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  RrSampleStore::EnsureResult ensured;
  const struct {
    const char* key;
    std::uint64_t* out;
  } fields[] = {{"had_before", &ensured.had_before},
                {"sampled", &ensured.sampled},
                {"reused", &ensured.reused},
                {"max_traversal", &ensured.max_traversal}};
  for (const auto& field : fields) {
    Result<std::int64_t> v = RequireInt(*root, field.key, 0, kMaxCount);
    if (!v.ok()) return v.status();
    *field.out = static_cast<std::uint64_t>(*v);
  }
  return ensured;
}

Result<KptResponse> ParseKptResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  KptResponse response;
  const JsonValue* kpt = root->Find("kpt");
  if (kpt == nullptr) {
    return Status::InvalidArgument("kpt response missing \"kpt\"");
  }
  Result<double> value = kpt->AsDouble();
  if (!value.ok()) return FieldError("kpt", value.status());
  response.kpt = *value;
  if (const JsonValue* hit = root->Find("cache_hit"); hit != nullptr) {
    Result<bool> b = hit->AsBool();
    if (!b.ok()) return FieldError("cache_hit", b.status());
    response.cache_hit = *b;
  }
  return response;
}

Result<ShardGainSummary> ParseSummaryResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  ShardGainSummary summary;
  Result<std::int64_t> shard = RequireInt(*root, "shard", 0, 63);
  if (!shard.ok()) return shard.status();
  summary.shard = static_cast<int>(*shard);
  const JsonValue* top = root->Find("top");
  if (top == nullptr || !top->is_array()) {
    return Status::InvalidArgument("summary response needs a \"top\" array");
  }
  summary.top.reserve(top->size());
  for (std::size_t i = 0; i < top->size(); ++i) {
    const JsonValue& pair = (*top)[i];
    if (!pair.is_array() || pair.size() != 2) {
      return Status::InvalidArgument("summary \"top\" entries are [node,cov]");
    }
    Result<std::int64_t> node = pair[0].AsInt();
    if (!node.ok()) return FieldError("top", node.status());
    Result<std::int64_t> coverage = pair[1].AsInt();
    if (!coverage.ok()) return FieldError("top", coverage.status());
    if (*node < 0 || *node > std::numeric_limits<NodeId>::max() ||
        *coverage < 0 || *coverage > 0xFFFFFFFFll) {
      return Status::InvalidArgument("summary \"top\" entry out of range");
    }
    summary.top.push_back(
        {static_cast<NodeId>(*node), static_cast<std::uint32_t>(*coverage)});
  }
  Result<std::int64_t> bound =
      RequireInt(*root, "unlisted_bound", 0, 0xFFFFFFFFll);
  if (!bound.ok()) return bound.status();
  summary.unlisted_bound = static_cast<std::uint32_t>(*bound);
  Result<std::int64_t> covered = RequireInt(*root, "covered_sets", 0,
                                            kMaxCount);
  if (!covered.ok()) return covered.status();
  summary.covered_sets = static_cast<std::uint64_t>(*covered);
  Result<std::int64_t> attached = RequireInt(*root, "attached_sets", 0,
                                             kMaxCount);
  if (!attached.ok()) return attached.status();
  summary.attached_sets = static_cast<std::uint64_t>(*attached);
  return summary;
}

Result<std::vector<std::uint32_t>> ParseCountsResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  const JsonValue* counts = root->Find("counts");
  if (counts == nullptr || !counts->is_array()) {
    return Status::InvalidArgument("counts response needs a \"counts\" array");
  }
  std::vector<std::uint32_t> out;
  out.reserve(counts->size());
  for (std::size_t i = 0; i < counts->size(); ++i) {
    Result<std::int64_t> v = (*counts)[i].AsInt();
    if (!v.ok()) return FieldError("counts", v.status());
    if (*v < 0 || *v > 0xFFFFFFFFll) {
      return Status::InvalidArgument("coverage count out of range");
    }
    out.push_back(static_cast<std::uint32_t>(*v));
  }
  return out;
}

Result<CoveredWordDelta> ParseDeltaResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  CoveredWordDelta delta;
  Result<std::int64_t> newly = RequireInt(*root, "newly_covered", 0,
                                          kMaxCount);
  if (!newly.ok()) return newly.status();
  delta.newly_covered = static_cast<std::uint64_t>(*newly);
  const JsonValue* words = root->Find("words");
  if (words == nullptr || !words->is_array()) {
    return Status::InvalidArgument("delta response needs a \"words\" array");
  }
  delta.words.reserve(words->size());
  for (std::size_t i = 0; i < words->size(); ++i) {
    const JsonValue& pair = (*words)[i];
    if (!pair.is_array() || pair.size() != 2) {
      return Status::InvalidArgument("delta \"words\" entries are [idx,bits]");
    }
    Result<std::int64_t> word = pair[0].AsInt();
    if (!word.ok()) return FieldError("words", word.status());
    if (*word < 0 || *word > 0xFFFFFFFFll) {
      return Status::InvalidArgument("delta word index out of range");
    }
    Result<std::string> hex = pair[1].AsString();
    if (!hex.ok()) return FieldError("words", hex.status());
    Result<std::uint64_t> bits = DecodeHexU64(*hex);
    if (!bits.ok()) return FieldError("words", bits.status());
    delta.words.emplace_back(static_cast<std::uint32_t>(*word), *bits);
  }
  return delta;
}

Result<std::uint64_t> ParseCoveredResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  Result<std::int64_t> covered = RequireInt(*root, "covered_sets", 0,
                                            kMaxCount);
  if (!covered.ok()) return covered.status();
  return static_cast<std::uint64_t>(*covered);
}

Result<ShardMemoryStats> ParseMemoryResponse(std::string_view line) {
  Result<JsonValue> root = ParseEnvelope(line);
  if (!root.ok()) return root.status();
  ShardMemoryStats stats;
  Result<std::int64_t> arena = RequireInt(*root, "arena_bytes", 0, kMaxCount);
  if (!arena.ok()) return arena.status();
  stats.arena_bytes = static_cast<std::size_t>(*arena);
  Result<std::int64_t> view = RequireInt(*root, "view_bytes", 0, kMaxCount);
  if (!view.ok()) return view.status();
  stats.view_bytes = static_cast<std::size_t>(*view);
  return stats;
}

}  // namespace serve
}  // namespace tirm
