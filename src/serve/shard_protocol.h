// Newline-delimited JSON codec for the shard-worker plane.
//
// A `tirm_server --mode=router` process drives K `--mode=shard_worker`
// processes over this line protocol — one request object per line in, one
// response object per line out, mirroring serve/protocol.h's strictness
// (closed key sets, malformed values are errors, responses always carry
// errors in-band). The ops are exactly the RrShardClient interface
// (rrset/shard_client.h); RemoteShardClient formats requests and parses
// responses, ShardWorkerSession does the inverse over an in-process
// LocalShardClient.
//
// Request lines (router -> worker):
//
//   {"op":"begin","num_ads":2,"store_seed":"0x1f2e...","num_threads":1,
//    "chunk_sets":4096,"sampler_kernel":"auto","coverage_kernel":"auto",
//    "kpt_ell":1.0,"kpt_max_samples":131072,"shard_index":0,"num_shards":2}
//   {"op":"ensure","ad":0,"min_sets":8192,"attached":0}
//   {"op":"kpt","ad":0,"s":1}
//   {"op":"attach","ad":0,"count":8192}
//   {"op":"summary","ad":0,"top_l":8}
//   {"op":"counts","ad":0,"nodes":[4,17,33]}
//   {"op":"dense","ad":0}
//   {"op":"commit","ad":0,"node":4}
//   {"op":"commit_range","ad":0,"node":4,"first_set":8192}
//   {"op":"retire","node":4}
//   {"op":"covered","ad":0}
//   {"op":"memory"}
//
// Response lines (worker -> router): {"ok":true,...} with the op's payload
// or {"ok":false,"error":{"code":...,"message":...}}.
//
// Precision note: uint64 values that can exceed 2^53 — the store seed and
// the packed covered-word bit patterns — travel as "0x..." hex STRINGS,
// not JSON numbers, so no reader can round them through a double. Counts
// (θ watermarks, coverages) are far below 2^53 and stay plain integers.

#ifndef TIRM_SERVE_SHARD_PROTOCOL_H_
#define TIRM_SERVE_SHARD_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rrset/coverage_bitmap.h"
#include "rrset/sample_store.h"
#include "rrset/shard_client.h"

namespace tirm {
namespace serve {

/// Lossless uint64 transport ("0x" + lowercase hex, no padding).
std::string EncodeHexU64(std::uint64_t value);
[[nodiscard]] Result<std::uint64_t> DecodeHexU64(std::string_view text);

/// One parsed shard-op request. `op` selects which fields are meaningful
/// (see the file comment); ParseShardRequest validates per-op key sets.
struct ShardOpRequest {
  std::string op;
  // -- begin
  ShardRunConfig run;
  int shard_index = 0;
  int num_shards = 1;
  // -- per-ad ops
  AdId ad = 0;
  std::uint64_t min_sets = 0;       ///< ensure
  std::uint64_t attached = 0;       ///< ensure
  std::uint64_t s = 1;              ///< kpt
  std::uint64_t count = 0;          ///< attach
  std::uint32_t top_l = 0;          ///< summary
  std::vector<NodeId> nodes;        ///< counts
  NodeId node = 0;                  ///< commit / commit_range / retire
  std::uint64_t first_set = 0;      ///< commit_range
};

// -- Request codec (client formats, worker parses).

std::string FormatBeginRequest(const ShardRunConfig& run, int shard_index,
                               int num_shards);
std::string FormatEnsureRequest(AdId ad, std::uint64_t min_sets,
                                std::uint64_t attached);
std::string FormatKptRequest(AdId ad, std::uint64_t s);
std::string FormatAttachRequest(AdId ad, std::uint64_t count);
std::string FormatSummaryRequest(AdId ad, std::uint32_t top_l);
std::string FormatCountsRequest(AdId ad, std::span<const NodeId> nodes);
std::string FormatDenseRequest(AdId ad);
std::string FormatCommitRequest(AdId ad, NodeId node);
std::string FormatCommitRangeRequest(AdId ad, NodeId node,
                                     std::uint64_t first_set);
std::string FormatRetireRequest(NodeId node);
std::string FormatCoveredRequest(AdId ad);
std::string FormatMemoryRequest();

[[nodiscard]] Result<ShardOpRequest> ParseShardRequest(std::string_view line);

// -- Response codec (worker formats, client parses).

std::string FormatShardErrorResponse(const Status& status);
std::string FormatOkResponse();
std::string FormatBeginResponse(int shard_index, int num_shards);
std::string FormatEnsureResponse(const RrSampleStore::EnsureResult& ensured);
std::string FormatKptResponse(double kpt, bool cache_hit);
std::string FormatSummaryResponse(const ShardGainSummary& summary);
std::string FormatCountsResponse(const std::vector<std::uint32_t>& counts);
std::string FormatDeltaResponse(const CoveredWordDelta& delta);
std::string FormatCoveredResponse(std::uint64_t covered_sets);
std::string FormatMemoryResponse(const ShardMemoryStats& stats);

/// Parses a response envelope: an in-band {"ok":false,...} becomes that
/// error Status; otherwise the typed extractors below read the payload.
[[nodiscard]] Status ParseStatusResponse(std::string_view line);
[[nodiscard]] Result<RrSampleStore::EnsureResult> ParseEnsureResponse(
    std::string_view line);
struct KptResponse {
  double kpt = 0.0;
  bool cache_hit = false;
};
[[nodiscard]] Result<KptResponse> ParseKptResponse(std::string_view line);
[[nodiscard]] Result<ShardGainSummary> ParseSummaryResponse(
    std::string_view line);
[[nodiscard]] Result<std::vector<std::uint32_t>> ParseCountsResponse(
    std::string_view line);
[[nodiscard]] Result<CoveredWordDelta> ParseDeltaResponse(
    std::string_view line);
[[nodiscard]] Result<std::uint64_t> ParseCoveredResponse(
    std::string_view line);
[[nodiscard]] Result<ShardMemoryStats> ParseMemoryResponse(
    std::string_view line);

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_SHARD_PROTOCOL_H_
