// Bounded MPMC queue with admission control — the AllocationService's
// request buffer.
//
// Two admission modes: TryPush rejects with a typed Unavailable status the
// moment the queue is full (overload shedding — callers get an immediate,
// retryable answer instead of unbounded latency), while PushWait blocks
// for space (backpressure — right for batch producers like SubmitSweep and
// the stdin front-end, where the producer *should* slow down). Pop blocks
// until an item arrives or the queue is closed and drained.
//
// FIFO order is preserved; Close() wakes every waiter, lets consumers
// drain what was admitted, and fails subsequent pushes with Unavailable.

#ifndef TIRM_SERVE_REQUEST_QUEUE_H_
#define TIRM_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace tirm {
namespace serve {

/// See file comment.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    TIRM_CHECK(capacity_ > 0) << "BoundedQueue capacity must be >= 1";
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const TIRM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Non-blocking admission: Unavailable when the queue is full or closed.
  Status TryPush(T item) TIRM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) return Closed();
      if (items_.size() >= capacity_) {
        return Status::Unavailable("request queue full (capacity " +
                                   std::to_string(capacity_) +
                                   "); retry later");
      }
      items_.push_back(std::move(item));
    }
    consumer_cv_.NotifyOne();
    return Status::OK();
  }

  /// Blocking admission: waits for space; Unavailable only when closed.
  Status PushWait(T item) TIRM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) producer_cv_.Wait(mutex_);
      if (closed_) return Closed();
      items_.push_back(std::move(item));
    }
    consumer_cv_.NotifyOne();
    return Status::OK();
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then nullopt — the consumer's signal to exit).
  std::optional<T> Pop() TIRM_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) consumer_cv_.Wait(mutex_);
      if (items_.empty()) return std::nullopt;  // closed and drained
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    producer_cv_.NotifyOne();
    return item;
  }

  /// Stops admission and wakes every waiter. Admitted items remain
  /// poppable (graceful drain). Idempotent.
  void Close() TIRM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    consumer_cv_.NotifyAll();
    producer_cv_.NotifyAll();
  }

  bool closed() const TIRM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

 private:
  static Status Closed() {
    return Status::Unavailable("request queue closed (service stopping)");
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar consumer_cv_;
  CondVar producer_cv_;
  std::deque<T> items_ TIRM_GUARDED_BY(mutex_);
  bool closed_ TIRM_GUARDED_BY(mutex_) = false;
};

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_REQUEST_QUEUE_H_
