#include "serve/shard_worker.h"

#include <utility>
#include <vector>

#include "serve/shard_protocol.h"

namespace tirm {
namespace serve {

ShardWorkerContext::ShardWorkerContext(const ProblemInstance* instance,
                                       int shard_index, int num_shards)
    : instance_(instance),
      shard_index_(shard_index),
      num_shards_(num_shards) {
  TIRM_CHECK(instance_ != nullptr);
  TIRM_CHECK(num_shards_ >= 1 && num_shards_ <= 64);
  TIRM_CHECK(shard_index_ >= 0 && shard_index_ < num_shards_);
}

RrSampleStore* ShardWorkerContext::GetOrCreateStore(const ShardRunConfig& run) {
  const StoreKey key{run.store_seed, run.num_threads, run.chunk_sets,
                     run.sampler_kernel};
  MutexLock lock(mutex_);
  std::unique_ptr<RrSampleStore>& store = stores_[key];
  if (store == nullptr) {
    store = std::make_unique<RrSampleStore>(
        &instance_->graph(),
        RrSampleStore::Options{.seed = run.store_seed,
                               .num_threads = run.num_threads,
                               .chunk_sets = run.chunk_sets,
                               .sampler_kernel = run.sampler_kernel,
                               .num_shards = num_shards_,
                               .shard_index = shard_index_});
  }
  return store.get();
}

ShardWorkerSession::ShardWorkerSession(ShardWorkerContext* context)
    : context_(context) {
  TIRM_CHECK(context_ != nullptr);
}

std::string ShardWorkerSession::HandleLine(std::string_view line) {
  Result<std::string> response = Dispatch(line);
  if (!response.ok()) return FormatShardErrorResponse(response.status());
  return response.MoveValue();
}

Result<std::string> ShardWorkerSession::Dispatch(std::string_view line) {
  Result<ShardOpRequest> parsed = ParseShardRequest(line);
  if (!parsed.ok()) return parsed.status();
  const ShardOpRequest& request = *parsed;

  if (request.op == "begin") {
    if (request.shard_index != context_->shard_index() ||
        request.num_shards != context_->num_shards()) {
      return Status::InvalidArgument(
          "shard identity mismatch: this worker is shard " +
          std::to_string(context_->shard_index()) + "/" +
          std::to_string(context_->num_shards()) + ", the router addressed " +
          std::to_string(request.shard_index) + "/" +
          std::to_string(request.num_shards));
    }
    auto client = std::make_unique<LocalShardClient>(
        context_->GetOrCreateStore(request.run), &context_->instance());
    TIRM_RETURN_NOT_OK(client->BeginRun(request.run));
    client_ = std::move(client);
    return FormatBeginResponse(context_->shard_index(),
                               context_->num_shards());
  }
  if (client_ == nullptr) {
    return Status::FailedPrecondition("shard op \"" + request.op +
                                      "\" before \"begin\"");
  }
  if (request.op == "ensure") {
    Result<RrSampleStore::EnsureResult> ensured =
        client_->EnsureSets(request.ad, request.min_sets, request.attached);
    if (!ensured.ok()) return ensured.status();
    return FormatEnsureResponse(*ensured);
  }
  if (request.op == "kpt") {
    bool cache_hit = false;
    Result<double> kpt = client_->KptEstimate(request.ad, request.s,
                                              &cache_hit);
    if (!kpt.ok()) return kpt.status();
    return FormatKptResponse(*kpt, cache_hit);
  }
  if (request.op == "attach") {
    TIRM_RETURN_NOT_OK(client_->Attach(request.ad, request.count));
    return FormatOkResponse();
  }
  if (request.op == "summary") {
    Result<ShardGainSummary> summary =
        client_->Summarize(request.ad, request.top_l);
    if (!summary.ok()) return summary.status();
    return FormatSummaryResponse(*summary);
  }
  if (request.op == "counts") {
    Result<std::vector<std::uint32_t>> counts =
        client_->CoverageCounts(request.ad, request.nodes);
    if (!counts.ok()) return counts.status();
    return FormatCountsResponse(*counts);
  }
  if (request.op == "dense") {
    Result<std::vector<std::uint32_t>> counts =
        client_->DenseCoverage(request.ad);
    if (!counts.ok()) return counts.status();
    return FormatCountsResponse(*counts);
  }
  if (request.op == "commit") {
    Result<CoveredWordDelta> delta = client_->Commit(request.ad, request.node);
    if (!delta.ok()) return delta.status();
    return FormatDeltaResponse(*delta);
  }
  if (request.op == "commit_range") {
    Result<CoveredWordDelta> delta =
        client_->CommitOnRange(request.ad, request.node, request.first_set);
    if (!delta.ok()) return delta.status();
    return FormatDeltaResponse(*delta);
  }
  if (request.op == "retire") {
    TIRM_RETURN_NOT_OK(client_->Retire(request.node));
    return FormatOkResponse();
  }
  if (request.op == "covered") {
    Result<std::uint64_t> covered = client_->CoveredSets(request.ad);
    if (!covered.ok()) return covered.status();
    return FormatCoveredResponse(*covered);
  }
  if (request.op == "memory") {
    Result<ShardMemoryStats> stats = client_->MemoryStats();
    if (!stats.ok()) return stats.status();
    return FormatMemoryResponse(*stats);
  }
  // ParseShardRequest already rejected unknown ops; keep the dispatcher
  // total anyway so a codec/dispatch skew cannot hang a router.
  return Status::Internal("unhandled shard op \"" + request.op + "\"");
}

}  // namespace serve
}  // namespace tirm
