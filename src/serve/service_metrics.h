// Service-level metrics for the AllocationService: admission/outcome
// counters plus queue-wait and serve-time latency histograms.
//
// Counter identities (enforced by tests/serving_test.cc and
// tests/obs_test.cc; they hold across Reset() — a reset service is
// indistinguishable from a fresh one):
//   received  = admitted + rejected
//   completed = served_ok + failed + expired
// and every admitted request eventually completes (after Stop()
// drains, admitted == completed).
//
// This is a per-service surface, not a process-global one: every
// AllocationService owns its own ServiceMetrics. Each service joins the
// process-wide obs::MetricsRegistry as a "serve.service" *provider*
// (a named JSON snapshot callback), so the `stats` admin request of the
// NDJSON protocol and any registry dump see every live service without
// the counters themselves being shared or double-counted. ToJson() below
// is that provider's payload shape.

#ifndef TIRM_SERVE_SERVICE_METRICS_H_
#define TIRM_SERVE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "common/histogram.h"
#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tirm {
namespace serve {

/// Point-in-time copy of the service counters and latency quantiles.
/// Latencies are in seconds; queue latency covers admission -> dequeue,
/// serve latency covers dequeue -> response (engine run + bookkeeping).
struct MetricsSnapshot {
  std::uint64_t received = 0;   ///< Submit/SubmitWait calls
  std::uint64_t admitted = 0;   ///< entered the queue
  std::uint64_t rejected = 0;   ///< admission control turned away
  std::uint64_t served_ok = 0;  ///< completed with an OK response
  std::uint64_t failed = 0;     ///< completed with an in-band error
  std::uint64_t expired = 0;    ///< deadline passed before dequeue

  std::uint64_t queue_count = 0;
  double queue_mean = 0.0, queue_p50 = 0.0, queue_p95 = 0.0, queue_p99 = 0.0;
  double queue_max = 0.0;

  std::uint64_t serve_count = 0;
  double serve_mean = 0.0, serve_p50 = 0.0, serve_p95 = 0.0, serve_p99 = 0.0;
  double serve_max = 0.0;
};

/// JSON section of a snapshot: counters at the top level plus "queue" /
/// "serve" latency sub-objects (count, mean, p50, p95, p99, max; seconds).
JsonValue ToJson(const MetricsSnapshot& snapshot);

/// Shared-state metrics sink; every method is thread-safe. Counters are
/// lock-free atomics; the histograms (one Record per request, off the hot
/// path) are mutex-guarded.
class ServiceMetrics {
 public:
  void RecordAdmitted() {
    received_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRejected() {
    received_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A request whose deadline passed at dequeue; `queue_seconds` still
  /// feeds the queue histogram (expiries are queue-latency signal).
  void RecordExpired(double queue_seconds) TIRM_EXCLUDES(mutex_);
  /// A dequeued request that ran; `ok` separates OK responses from in-band
  /// errors (unknown allocator, invalid config, engine failure).
  void RecordServed(double queue_seconds, double serve_seconds, bool ok)
      TIRM_EXCLUDES(mutex_);
  /// A request admitted but never dequeued (service stopped first): counts
  /// toward `failed` but feeds only the queue histogram — the serve
  /// histogram covers requests that actually ran.
  void RecordDropped(double queue_seconds) TIRM_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const TIRM_EXCLUDES(mutex_);

  /// Zeroes every counter and histogram. For measurement harnesses that
  /// exclude warm-up traffic; call only while the service is idle (no
  /// requests in flight), or the counter identities will not hold.
  void Reset() TIRM_EXCLUDES(mutex_);

 private:
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> served_ok_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> expired_{0};

  mutable Mutex mutex_;
  LatencyHistogram queue_latency_ TIRM_GUARDED_BY(mutex_);
  LatencyHistogram serve_latency_ TIRM_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace tirm

#endif  // TIRM_SERVE_SERVICE_METRICS_H_
