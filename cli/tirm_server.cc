// tirm_server — the newline-delimited-JSON serving front-end over
// AllocationService (see src/serve/protocol.h for the line format).
//
//   # one request per stdin line, one response per stdout line
//   echo '{"id":"q1","allocator":"tirm","query":{"lambda":0.5}}' |
//     tirm_server --dataset=flixster --scale=0.01 --workers=4
//
//   # optional TCP listener (same line protocol per connection)
//   tirm_server --dataset=fig1 --port=7077
//
//   # serve a prebuilt bundle: the file is mmap'ed and verified ONCE at
//   # startup and every worker borrows the same read-only mapping —
//   # N workers, one physical copy, millisecond warm-up per worker
//   tirm_server --bundle=flixster.tirm --workers=8
//
// Flags: --dataset={fig1,flixster,epinions,dblp,livejournal,
//        file:<edge-list>,bundle:<path.tirm>} --bundle=<path.tirm> --scale=
//        --workers= (0 = hardware) --queue_capacity= --port= (0 = stdin)
//        --seed= --eval_sims= --evaluate= --reuse_samples= --timeout_ms=
//        plus every AllocatorConfig flag and every EngineQuery flag — those
//        set the *defaults* a request starts from; request fields override
//        them per query. All knobs also read TIRM_* environment variables.
//
// Multi-process sharding (the GreeDIMM shape, serve/shard_protocol.h):
//
//   # K shard workers, each owning 1/K of every RR pool for ONE shared
//   # read-only bundle (same file, mmap'ed independently by each process)
//   tirm_server --mode=shard_worker --bundle=g.tirm --shard_index=0
//               --num_shards=2 --port=7101
//   tirm_server --mode=shard_worker --bundle=g.tirm --shard_index=1
//               --num_shards=2 --port=7102
//
//   # the router serves the NORMAL allocation protocol, fanning every
//   # tirm run's sampling/reduction sub-ops to the workers; allocations
//   # are bit-identical to a single-process run at the same flags
//   tirm_server --mode=router --bundle=g.tirm
//               --shards=127.0.0.1:7101,127.0.0.1:7102
//
// A shard worker speaks the shard op line protocol (stdin or --port) and
// serves ONE coordinator at a time; --mode=router forces --workers=1 for
// the same reason (the shard connections are single-coordinator).
//
// Observability: a '{"id":"s1","stats":true}' line is an admin request
// answered immediately (never enqueued) with the service metrics, store
// stats, and the process-wide metrics registry; '"profile":true' on a
// normal request attaches a stage-timing breakdown to its response.
//
// Responses appear in request order (per stream); diagnostics go to
// stderr, stdout carries protocol lines only. Malformed lines and unknown
// allocators are answered with in-band {"ok":false,...} responses — the
// server never dies on bad input. Exit: 0 at EOF (stdin mode), 1 on
// startup errors.

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/threading.h"
#include "datasets/dataset.h"
#include "io/bundle_reader.h"
#include "io/mapped_file.h"
#include "serve/allocation_service.h"
#include "serve/protocol.h"
#include "serve/shard_remote.h"
#include "serve/shard_worker.h"
#include "topic/instance.h"

namespace {

using namespace tirm;

int Fail(const Status& status) {
  std::fprintf(stderr, "tirm_server: %s\n", status.ToString().c_str());
  return 1;
}

bool IsKnownFlag(const std::string& key) {
  // Server-specific knobs; the AllocatorConfig / EngineQuery default flags
  // come from the protocol's own key sets so the three lists (CLI flags,
  // request "config", request "query") cannot drift apart.
  static const std::set<std::string> kServer = {
      "dataset", "bundle",   "scale",         "workers", "queue_capacity",
      "port",    "seed",     "eval_sims",     "evaluate",
      "allocator", "reuse_samples", "timeout_ms",
      "mode",    "shard_index", "shards"};
  return kServer.count(key) > 0 ||
         serve::RequestConfigKeys().count(key) > 0 ||
         serve::RequestQueryKeys().count(key) > 0;
}

/// Serves one NDJSON stream: reads request lines from `in`, emits response
/// lines through `write_line`. Responses keep request order: real requests
/// ride futures, unparseable lines become immediately ready error
/// responses, and the drain loop only ever prints the front of the deque.
class StreamSession {
 public:
  StreamSession(serve::AllocationService* service,
                const serve::AllocationRequest& defaults)
      : service_(service), defaults_(defaults) {}

  /// Feeds one input line; may emit ready responses.
  template <typename WriteLine>
  void HandleLine(const std::string& line, const WriteLine& write_line) {
    if (line.empty()) return;
    Result<serve::AllocationRequest> request =
        serve::ParseRequest(line, defaults_);
    if (!request.ok()) {
      // Keep the error correlatable when the line was JSON with an id.
      pending_.emplace_back(serve::FormatErrorResponse(
          serve::RecoverRequestId(line), request.status()));
    } else if (request->stats) {
      // Admin request: answered directly (never enqueued), but through the
      // same ordered deque so stats lines interleave in request order.
      pending_.emplace_back(
          serve::FormatStatsResponse(request->id, *service_));
    } else {
      Result<std::future<serve::AllocationResponse>> submitted =
          service_->SubmitWait(*request);
      if (!submitted.ok()) {
        pending_.emplace_back(
            serve::FormatErrorResponse(request->id, submitted.status()));
      } else {
        pending_.emplace_back(submitted.MoveValue());
      }
    }
    Drain(write_line, /*block=*/false);
  }

  /// Writes whatever responses are ready without blocking (called while
  /// the input side is idle, so a waiting client is never starved).
  template <typename WriteLine>
  void DrainReady(const WriteLine& write_line) {
    Drain(write_line, /*block=*/false);
  }

  /// Blocks until every pending response has been written.
  template <typename WriteLine>
  void Finish(const WriteLine& write_line) {
    Drain(write_line, /*block=*/true);
  }

 private:
  using Pending =
      std::variant<std::string, std::future<serve::AllocationResponse>>;

  template <typename WriteLine>
  void Drain(const WriteLine& write_line, bool block) {
    while (!pending_.empty()) {
      Pending& front = pending_.front();
      if (auto* ready = std::get_if<std::string>(&front)) {
        write_line(*ready);
      } else {
        auto& future =
            std::get<std::future<serve::AllocationResponse>>(front);
        if (!block && future.wait_for(std::chrono::seconds(0)) !=
                          std::future_status::ready) {
          return;  // keep order: don't skip past an in-flight request
        }
        write_line(serve::FormatResponse(future.get()));
      }
      pending_.pop_front();
    }
  }

  serve::AllocationService* service_;
  serve::AllocationRequest defaults_;
  std::deque<Pending> pending_;
};

/// Serves the line protocol on a readable fd: polls for input with a
/// short timeout and, while the client is quiet, flushes responses the
/// moment their futures resolve — an interactive client sees its answer
/// without having to send another line or close the stream, and a
/// pipelining client still gets batched throughput.
template <typename WriteLine>
void ServeFd(int fd, serve::AllocationService* service,
             const serve::AllocationRequest& defaults,
             const WriteLine& write_line, const bool& write_failed) {
  StreamSession session(service, defaults);
  std::string buffer;
  char chunk[4096];
  while (!write_failed) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int ready = poll(&p, 1, /*timeout_ms=*/20);
    if (ready < 0) {
      if (errno == EINTR) continue;  // e.g. SIGTSTP/SIGCONT: not EOF
      break;
    }
    if (ready == 0) {  // input idle: deliver whatever finished serving
      session.DrainReady(write_line);
      continue;
    }
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF or error
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      session.HandleLine(line, write_line);
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!buffer.empty() && !write_failed) {
    session.HandleLine(buffer, write_line);  // unterminated final line
  }
  session.Finish(write_line);
}

void ServeStdin(serve::AllocationService* service,
                const serve::AllocationRequest& defaults) {
  const bool write_failed = false;
  const auto write_line = [](const std::string& response) {
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  ServeFd(/*fd=*/0, service, defaults, write_line, write_failed);
}

// ---- Optional TCP listener (POSIX): one thread per connection, the same
// line protocol per stream. Concurrency across connections comes from the
// shared service's worker pool.

void ServeConnection(int fd, serve::AllocationService* service,
                     const serve::AllocationRequest& defaults) {
  bool write_failed = false;
  const auto write_line = [fd, &write_failed](const std::string& response) {
    if (write_failed) return;
    std::string out = response;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = send(fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
      if (n <= 0) {
        write_failed = true;  // client went away; drop the rest
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  };
  ServeFd(fd, service, defaults, write_line, write_failed);
  close(fd);
}

int ServeTcp(int port, serve::AllocationService* service,
             const serve::AllocationRequest& defaults) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Fail(Status::IOError("socket() failed"));
  const int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listener);
    return Fail(Status::IOError("cannot bind port " + std::to_string(port)));
  }
  if (listen(listener, 64) != 0) {
    close(listener);
    return Fail(Status::IOError("listen() failed"));
  }
  std::fprintf(stderr, "tirm_server: listening on port %d\n", port);
  // Detached connection threads: a joinable thread per closed connection
  // would leak its stack until some future join. The counter lets the
  // accept loop wait for live connections before the service (which the
  // threads point into) is destroyed.
  auto active_connections = std::make_shared<std::atomic<int>>(0);
  while (true) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Transient fd exhaustion: shed load instead of shutting down.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      std::fprintf(stderr, "tirm_server: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    active_connections->fetch_add(1);
    std::thread([fd, service, defaults, active_connections] {
      ServeConnection(fd, service, defaults);
      active_connections->fetch_sub(1);
    }).detach();
  }
  close(listener);
  while (active_connections->load() > 0) {  // no use-after-free of service
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

// ---- Shard-worker serving: the shard op line protocol
// (serve/shard_protocol.h), synchronous — one response line per request
// line, in order. A worker serves ONE coordinator at a time (two sessions
// must not drive one shard store concurrently), so the TCP variant
// accepts connections sequentially; the shared context keeps pools warm
// across connections and runs.

template <typename WriteLine>
void ServeShardFd(int fd, serve::ShardWorkerContext* context,
                  const WriteLine& write_line) {
  serve::ShardWorkerSession session(context);
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) write_line(session.HandleLine(line));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!buffer.empty()) {
    write_line(session.HandleLine(buffer));  // unterminated final line
  }
}

void ServeShardStdin(serve::ShardWorkerContext* context) {
  ServeShardFd(/*fd=*/0, context, [](const std::string& response) {
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });
}

int ServeShardTcp(int port, serve::ShardWorkerContext* context) {
  const int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Fail(Status::IOError("socket() failed"));
  const int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(listener);
    return Fail(Status::IOError("cannot bind port " + std::to_string(port)));
  }
  if (listen(listener, 4) != 0) {
    close(listener);
    return Fail(Status::IOError("listen() failed"));
  }
  std::fprintf(stderr, "tirm_server: shard worker listening on port %d\n",
               port);
  while (true) {
    const int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::fprintf(stderr, "tirm_server: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    bool write_failed = false;
    ServeShardFd(fd, context,
                 [fd, &write_failed](const std::string& response) {
                   if (write_failed) return;
                   std::string out = response;
                   out += '\n';
                   std::size_t sent = 0;
                   while (sent < out.size()) {
                     const ssize_t n = send(fd, out.data() + sent,
                                            out.size() - sent, MSG_NOSIGNAL);
                     if (n <= 0) {
                       write_failed = true;
                       return;
                     }
                     sent += static_cast<std::size_t>(n);
                   }
                 });
    close(fd);
  }
  close(listener);
  return 0;
}

/// Parses "host:port,host:port,..." into endpoints; K = list size.
Result<std::vector<std::pair<std::string, int>>> ParseShardEndpoints(
    const std::string& shards) {
  std::vector<std::pair<std::string, int>> endpoints;
  std::size_t start = 0;
  while (start <= shards.size()) {
    std::size_t comma = shards.find(',', start);
    if (comma == std::string::npos) comma = shards.size();
    const std::string entry = shards.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) {
      return Status::InvalidArgument("--shards has an empty entry");
    }
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument("--shards entry \"" + entry +
                                     "\" is not host:port");
    }
    int port = 0;
    for (const char c : entry.substr(colon + 1)) {
      if (c < '0' || c > '9' || port > 0xFFFF) {
        return Status::InvalidArgument("--shards entry \"" + entry +
                                       "\" has a bad port");
      }
      port = port * 10 + (c - '0');
    }
    if (port < 1 || port > 0xFFFF) {
      return Status::InvalidArgument("--shards entry \"" + entry +
                                     "\" has a bad port");
    }
    endpoints.emplace_back(entry.substr(0, colon), port);
  }
  if (endpoints.empty() || endpoints.size() > 64) {
    return Status::InvalidArgument("--shards needs 1..64 host:port entries");
  }
  return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  for (const std::string& key : flags.Keys()) {
    if (!IsKnownFlag(key)) {
      return Fail(Status::InvalidArgument(
          "unknown flag --" + key + " (see the header of cli/tirm_server.cc)"));
    }
  }

  // Request defaults: the server's AllocatorConfig/EngineQuery flags are
  // the baseline every request starts from.
  serve::AllocationRequest defaults;
  {
    Result<AllocatorConfig> config = AllocatorConfig::FromFlags(flags);
    if (!config.ok()) return Fail(config.status());
    defaults.config = *config;
    Result<EngineQuery> query = EngineQuery::FromFlags(flags);
    if (!query.ok()) return Fail(query.status());
    defaults.query = *query;
    Result<double> timeout = flags.GetDoubleStrict("timeout_ms", 0.0);
    if (!timeout.ok()) return Fail(timeout.status());
    if (!(*timeout >= 0.0) || !std::isfinite(*timeout)) {
      return Fail(Status::InvalidArgument(
          "--timeout_ms must be finite and non-negative"));
    }
    defaults.timeout_ms = *timeout;
  }

  const std::string dataset = flags.GetString("dataset", "fig1");
  Result<double> scale = flags.GetDoubleStrict("scale", 0.01);
  if (!scale.ok()) return Fail(scale.status());
  if (!(*scale > 0.0) || !std::isfinite(*scale)) {
    return Fail(Status::InvalidArgument("--scale must be positive and finite"));
  }
  Result<std::int64_t> seed = flags.GetIntStrict("seed", 2015);
  if (!seed.ok()) return Fail(seed.status());
  Result<std::int64_t> eval_sims = flags.GetIntStrict("eval_sims", 2000);
  if (!eval_sims.ok()) return Fail(eval_sims.status());
  if (*eval_sims < 1) {
    return Fail(Status::InvalidArgument("--eval_sims must be >= 1"));
  }
  Result<bool> evaluate = flags.GetBoolStrict("evaluate", true);
  if (!evaluate.ok()) return Fail(evaluate.status());
  Result<bool> reuse_samples = flags.GetBoolStrict("reuse_samples", true);
  if (!reuse_samples.ok()) return Fail(reuse_samples.status());
  Result<std::int64_t> workers = flags.GetIntStrict("workers", 0);
  if (!workers.ok()) return Fail(workers.status());
  if (*workers < 0 || *workers > kMaxSamplingThreads) {
    return Fail(Status::InvalidArgument("--workers must be in [0, 256]"));
  }
  Result<std::int64_t> capacity = flags.GetIntStrict("queue_capacity", 256);
  if (!capacity.ok()) return Fail(capacity.status());
  if (*capacity < 1) {
    return Fail(Status::InvalidArgument("--queue_capacity must be >= 1"));
  }
  Result<std::int64_t> port = flags.GetIntStrict("port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port < 0 || *port > 0xFFFF) {
    return Fail(Status::InvalidArgument("--port must be in [0, 65535]"));
  }

  const std::string mode = flags.GetString("mode", "serve");
  if (mode != "serve" && mode != "router" && mode != "shard_worker") {
    return Fail(Status::InvalidArgument(
        "--mode must be serve, router, or shard_worker, got \"" + mode +
        "\""));
  }
  Result<std::int64_t> shard_index = flags.GetIntStrict("shard_index", 0);
  if (!shard_index.ok()) return Fail(shard_index.status());
  const std::string shards_flag = flags.GetString("shards", "");
  if (mode != "shard_worker" && flags.Has("shard_index")) {
    return Fail(Status::InvalidArgument(
        "--shard_index only applies to --mode=shard_worker"));
  }
  if (mode == "router" && shards_flag.empty()) {
    return Fail(
        Status::InvalidArgument("--mode=router requires --shards=host:port,"
                                "host:port,..."));
  }
  if (mode != "router" && !shards_flag.empty()) {
    return Fail(Status::InvalidArgument(
        "--shards only applies to --mode=router"));
  }

  std::string bundle_path = flags.GetString("bundle", "");
  if (!bundle_path.empty() && flags.Has("dataset")) {
    return Fail(Status::InvalidArgument(
        "--bundle and --dataset are mutually exclusive"));
  }
  if (bundle_path.empty() && dataset.starts_with("bundle:")) {
    // Route the dataset-name spelling onto the same pre-mapped fast path:
    // one mmap + one full verification shared by every worker, instead of
    // each worker independently re-opening and re-verifying the file.
    bundle_path = dataset.substr(7);
  }

  // A name typo must fail before N worker engines try to build the
  // dataset — and without paying for a throwaway build. Prefixed names
  // (file:/bundle:) are probed by actually loading once below.
  const bool prefixed_dataset = dataset.starts_with("file:") ||
                                dataset.starts_with("bundle:");
  if (bundle_path.empty() && !prefixed_dataset && !IsKnownDataset(dataset)) {
    Rng probe_rng(0);
    return Fail(BuildNamedDataset(dataset, *scale, probe_rng).status());
  }

  serve::AllocationService::Options options;
  options.num_workers = static_cast<int>(*workers);
  options.queue_capacity = static_cast<std::size_t>(*capacity);
  options.engine.eval_sims = static_cast<std::size_t>(*eval_sims);
  options.engine.seed = static_cast<std::uint64_t>(*seed);
  options.engine.evaluate = *evaluate;
  options.engine.reuse_samples = *reuse_samples;

  const std::uint64_t build_seed = static_cast<std::uint64_t>(*seed);
  const double build_scale = *scale;
  std::function<BuiltInstance()> build_instance;
  std::string source = dataset;
  if (!bundle_path.empty()) {
    // Pre-map and fully verify the bundle ONCE at startup; the worker
    // engines then assemble their zero-copy views from the same shared
    // read-only mapping with verification off — per-worker warm-up is
    // just span bookkeeping, and all workers share one physical copy.
    Result<MappedFile> mapped = MappedFile::Open(bundle_path);
    if (!mapped.ok()) return Fail(mapped.status());
    auto mapping = std::make_shared<const MappedFile>(mapped.MoveValue());
    mapping->Prefetch();
    Result<BuiltInstance> probe =
        LoadBundleInstance(mapping, {.verify = true});
    if (!probe.ok()) return Fail(probe.status());
    source = "bundle:" + bundle_path + " (" + probe->name + ")";
    build_instance = [mapping] {
      return LoadBundleInstance(mapping, {.verify = false}).MoveValue();
    };
  } else {
    if (prefixed_dataset) {
      // Probe once so a bad path/file fails before worker spin-up
      // (the builder lambda aborts on error by contract).
      Rng probe_rng(build_seed);
      Result<BuiltInstance> probe =
          BuildNamedDataset(dataset, build_scale, probe_rng);
      if (!probe.ok()) return Fail(probe.status());
    }
    build_instance = [dataset, build_scale, build_seed] {
      // Deterministic per call: the per-worker engines must be identical
      // (this is the service's response-purity contract).
      Rng build_rng(build_seed);
      return BuildNamedDataset(dataset, build_scale, build_rng).MoveValue();
    };
  }
  if (mode == "shard_worker") {
    const int num_shards = defaults.config.num_shards;
    const int index = static_cast<int>(*shard_index);
    if (index < 0 || index >= num_shards) {
      return Fail(Status::InvalidArgument(
          "--shard_index must be in [0, --num_shards), got " +
          std::to_string(index) + " with num_shards=" +
          std::to_string(num_shards)));
    }
    // One instance per worker process, built once; the context only ever
    // reads query-independent data from it (signatures, edge probs).
    const BuiltInstance built = build_instance();
    const ProblemInstance base = built.MakeInstance(/*kappa=*/1,
                                                    /*lambda=*/0.0);
    serve::ShardWorkerContext context(&base, index, num_shards);
    std::fprintf(stderr, "tirm_server: shard worker %d/%d dataset=%s\n",
                 index, num_shards, source.c_str());
    if (*port > 0) return ServeShardTcp(static_cast<int>(*port), &context);
    ServeShardStdin(&context);
    return 0;
  }

  // Router mode: connect the shard fan-out BEFORE the service spins up, so
  // a missing worker fails startup instead of the first request. The
  // clients ride into every request through the config defaults
  // (ParseRequest copies them; request lines cannot override pointers).
  std::vector<std::unique_ptr<serve::RemoteShardClient>> shard_clients;
  if (mode == "router") {
    Result<std::vector<std::pair<std::string, int>>> endpoints =
        ParseShardEndpoints(shards_flag);
    if (!endpoints.ok()) return Fail(endpoints.status());
    const int num_shards = static_cast<int>(endpoints->size());
    if (flags.Has("num_shards") && defaults.config.num_shards != num_shards) {
      return Fail(Status::InvalidArgument(
          "--num_shards disagrees with the --shards list (" +
          std::to_string(defaults.config.num_shards) + " vs " +
          std::to_string(num_shards) + " endpoints)"));
    }
    defaults.config.num_shards = num_shards;
    if (Status valid = defaults.config.Validate(); !valid.ok()) {
      return Fail(valid);
    }
    for (int k = 0; k < num_shards; ++k) {
      const auto& [host, shard_port] = (*endpoints)[static_cast<std::size_t>(k)];
      Result<std::unique_ptr<serve::TcpLineTransport>> transport =
          serve::TcpLineTransport::Connect(host, shard_port);
      if (!transport.ok()) return Fail(transport.status());
      shard_clients.push_back(std::make_unique<serve::RemoteShardClient>(
          transport.MoveValue(), k, num_shards));
      defaults.config.shard_clients.push_back(shard_clients.back().get());
    }
    if (options.num_workers != 1) {
      // The shard connections are single-coordinator: concurrent worker
      // engines would interleave ops on one wire.
      std::fprintf(stderr,
                   "tirm_server: router mode forces --workers=1\n");
      options.num_workers = 1;
    }
    std::fprintf(stderr, "tirm_server: routing to %d shard worker(s)\n",
                 num_shards);
  }

  serve::AllocationService service(build_instance, options);

  std::fprintf(stderr,
               "tirm_server: dataset=%s scale=%g workers=%d queue=%zu "
               "eval=%s reuse_samples=%s\n",
               source.c_str(), build_scale, service.num_workers(),
               options.queue_capacity, *evaluate ? "on" : "off",
               *reuse_samples ? "on" : "off");

  if (*port > 0) return ServeTcp(static_cast<int>(*port), &service, defaults);
  ServeStdin(&service, defaults);

  const serve::MetricsSnapshot m = service.Metrics();
  std::fprintf(stderr,
               "tirm_server: served_ok=%llu failed=%llu expired=%llu "
               "rejected=%llu | queue p50/p95/p99 %.2f/%.2f/%.2f ms | "
               "serve p50/p95/p99 %.2f/%.2f/%.2f ms\n",
               static_cast<unsigned long long>(m.served_ok),
               static_cast<unsigned long long>(m.failed),
               static_cast<unsigned long long>(m.expired),
               static_cast<unsigned long long>(m.rejected),
               m.queue_p50 * 1e3, m.queue_p95 * 1e3, m.queue_p99 * 1e3,
               m.serve_p50 * 1e3, m.serve_p95 * 1e3, m.serve_p99 * 1e3);
  return 0;
}
