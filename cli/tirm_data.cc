// tirm_data — builds, inspects, and converts ".tirm" instance bundles
// (the mmap-backed data plane; see io/bundle_format.h).
//
//   # generate a stand-in (or ingest a SNAP edge list) and save the bundle
//   tirm_data build --dataset=flixster --scale=0.01 --seed=2015 --out=flix.tirm
//   tirm_data build --dataset=file:soc-Epinions1.txt --out=epinions.tirm
//
//   # inspect: header, meta counts, section table, checksum verification
//   tirm_data info --bundle=flix.tirm
//
//   # convert a legacy TIRMIN01 instance file (topic/instance_io.h)
//   tirm_data convert --in=old_instance.bin --out=new.tirm
//
// Flags: build: --dataset= --scale= --seed= --num_ads= --out=
//        info:  --bundle= --verify={true,false}
//        convert: --in= --out= --name=
// Every command validates strictly and exits 1 with a typed error on
// malformed inputs; nothing is ever half-written (the writer renames a
// temp file into place).

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "common/flags.h"
#include "graph/edge_list_io.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datasets/dataset.h"
#include "graph/graph_stats.h"
#include "io/bundle_reader.h"
#include "io/bundle_writer.h"
#include "topic/instance_io.h"

namespace {

using namespace tirm;

int Fail(const Status& status) {
  std::fprintf(stderr, "tirm_data: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tirm_data <build|info|convert> [--flags]\n"
               "  build   --dataset=<name|file:path> [--scale=] [--seed=] "
               "[--num_ads=] --out=<path.tirm>\n"
               "  info    --bundle=<path.tirm> [--verify=true]\n"
               "  convert --in=<legacy TIRMIN01> --out=<path.tirm> [--name=]\n");
  return 1;
}

Status CheckKnownFlags(const Flags& flags, const std::set<std::string>& known) {
  for (const std::string& key : flags.Keys()) {
    if (known.count(key) == 0) {
      return Status::InvalidArgument("unknown flag --" + key +
                                     " (see the header of cli/tirm_data.cc)");
    }
  }
  return Status::OK();
}

int RunBuild(const Flags& flags) {
  if (Status s = CheckKnownFlags(
          flags, {"dataset", "scale", "seed", "num_ads", "out"});
      !s.ok()) {
    return Fail(s);
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("build requires --out=<path.tirm>"));
  }
  const std::string dataset = flags.GetString("dataset", "fig1");
  Result<double> scale = flags.GetDoubleStrict("scale", 0.01);
  if (!scale.ok()) return Fail(scale.status());
  Result<std::int64_t> seed = flags.GetIntStrict("seed", 2015);
  if (!seed.ok()) return Fail(seed.status());
  Result<std::int64_t> num_ads = flags.GetIntStrict("num_ads", 0);
  if (!num_ads.ok()) return Fail(num_ads.status());
  if (*num_ads < 0) {
    return Fail(Status::InvalidArgument("--num_ads must be >= 0"));
  }

  WallTimer build_timer;
  Rng rng(static_cast<std::uint64_t>(*seed));
  Result<BuiltInstance> built = Status::Internal("unreachable");
  if (*num_ads == 0) {
    built = BuildNamedDataset(dataset, *scale, rng);
  } else if (dataset.starts_with("file:")) {
    // The override rides the spec path, so resolve it up front — the
    // instance is built exactly once either way.
    Result<Graph> graph = LoadEdgeList(dataset.substr(5));
    if (!graph.ok()) return Fail(graph.status());
    DatasetSpec spec = FileGraphSpec(*scale);
    spec.name = dataset;
    built = BuildDatasetOnGraph(spec,
                                std::make_unique<Graph>(graph.MoveValue()),
                                rng, static_cast<int>(*num_ads));
  } else {
    Result<DatasetSpec> spec = StandInSpecByName(dataset, *scale);
    if (!spec.ok()) {
      return Fail(Status::InvalidArgument(
          "--num_ads is not supported for dataset \"" + dataset + "\""));
    }
    built = BuildDataset(*spec, rng, static_cast<int>(*num_ads));
  }
  if (!built.ok()) return Fail(built.status());
  const double build_seconds = build_timer.Seconds();

  WallTimer write_timer;
  if (Status s = WriteBundle(*built, out); !s.ok()) return Fail(s);
  const double write_seconds = write_timer.Seconds();

  Result<BundleInfo> info = ReadBundleInfo(out, /*verify_checksums=*/true);
  if (!info.ok()) return Fail(info.status());
  std::printf(
      "built %s -> %s\n"
      "  %llu nodes, %llu edges, %llu topics (%s), %llu ads, %llu bytes\n"
      "  generate %.3fs, write %.3fs\n",
      dataset.c_str(), out.c_str(),
      static_cast<unsigned long long>(info->num_nodes),
      static_cast<unsigned long long>(info->num_edges),
      static_cast<unsigned long long>(info->num_topics),
      info->per_topic ? "per-topic" : "shared",
      static_cast<unsigned long long>(info->num_ads),
      static_cast<unsigned long long>(info->file_size), build_seconds,
      write_seconds);
  return 0;
}

int RunInfo(const Flags& flags) {
  if (Status s = CheckKnownFlags(flags, {"bundle", "verify"}); !s.ok()) {
    return Fail(s);
  }
  const std::string path = flags.GetString("bundle", "");
  if (path.empty()) {
    return Fail(Status::InvalidArgument("info requires --bundle=<path.tirm>"));
  }
  Result<bool> verify = flags.GetBoolStrict("verify", true);
  if (!verify.ok()) return Fail(verify.status());

  Result<BundleInfo> info = ReadBundleInfo(path, *verify);
  if (!info.ok()) return Fail(info.status());
  std::printf("bundle: %s\n", path.c_str());
  std::printf("  version %u, %llu bytes, name \"%s\"\n", info->version,
              static_cast<unsigned long long>(info->file_size),
              info->name.c_str());
  std::printf(
      "  %llu nodes, %llu edges, %llu topics (%s), %llu ads "
      "(CTP rows: %llu)\n",
      static_cast<unsigned long long>(info->num_nodes),
      static_cast<unsigned long long>(info->num_edges),
      static_cast<unsigned long long>(info->num_topics),
      info->per_topic ? "per-topic" : "shared",
      static_cast<unsigned long long>(info->num_ads),
      static_cast<unsigned long long>(info->ctp_num_ads));
  std::printf("  sections:\n");
  bool all_ok = true;
  for (const BundleSectionInfo& s : info->sections) {
    std::printf("    %-13s offset %10llu  size %12llu  checksum %016llX%s\n",
                s.name.c_str(), static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size),
                static_cast<unsigned long long>(s.checksum),
                !*verify ? "" : (s.checksum_ok ? "  ok" : "  CORRUPT"));
    all_ok = all_ok && s.checksum_ok;
  }
  if (*verify && !all_ok) {
    return Fail(Status::IOError(path + ": payload checksum mismatch"));
  }
  if (*verify) std::printf("  all section checksums verified\n");
  return 0;
}

int RunConvert(const Flags& flags) {
  if (Status s = CheckKnownFlags(flags, {"in", "out", "name"}); !s.ok()) {
    return Fail(s);
  }
  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument(
        "convert requires --in=<legacy instance> and --out=<path.tirm>"));
  }
  Result<InstanceBundle> legacy = LoadInstanceBundle(in);
  if (!legacy.ok()) return Fail(legacy.status());
  const std::string name = flags.GetString("name", "converted:" + in);
  if (Status s = WriteBundle(*legacy->graph, *legacy->edge_probs,
                             *legacy->ctps, legacy->advertisers, name, out);
      !s.ok()) {
    return Fail(s);
  }
  std::printf("converted %s (legacy TIRMIN01) -> %s\n", in.c_str(),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  // argv[1] (the subcommand) plays the program-name slot for the parser.
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) return Fail(s);

  if (command == "build") return RunBuild(flags);
  if (command == "info") return RunInfo(flags);
  if (command == "convert") return RunConvert(flags);
  return Usage();
}
