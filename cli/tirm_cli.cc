// tirm_cli — run any registered allocator on any dataset stand-in, with
// optional parameter sweeps, through the AdAllocEngine facade.
//
//   tirm_cli --list
//   tirm_cli --allocator=myopic                      # Fig. 1 gadget
//   tirm_cli --allocator=tirm --dataset=flixster --scale=0.01 --eps=0.2
//   tirm_cli --allocator=all --kappa=2 --lambda=0.1
//   tirm_cli --allocator=tirm --sweep_lambda=0,0.1,0.5,1
//
// Flags: --dataset={fig1,flixster,epinions,dblp,livejournal,
//        file:<edge-list>,bundle:<path.tirm>} --bundle=<path.tirm>
//        (shorthand for --dataset=bundle:<path>; mmap'ed zero-copy load)
//        --scale= --kappa= --lambda= --beta= --budget_scale= --eval_sims=
//        --seed= --sweep_lambda=a,b,c --reuse_samples={true,false} plus
//        every AllocatorConfig flag
//        (--eps, --theta_cap, --threads, --irie_alpha, --mc_sims, ...).
// Observability: --trace_out=<path> records the whole run with the
// obs::TraceRecorder and writes a Chrome trace-event JSON file (load it
// in Perfetto or chrome://tracing); --print_profile prints the per-stage
// aggregate (count / total ms per span name) to stdout.
// All knobs also read TIRM_* environment variables. Malformed numeric
// values are rejected with an error (strict parsing), not defaulted.

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "api/ad_alloc_engine.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "datasets/dataset.h"
#include "graph/graph_stats.h"
#include "obs/trace.h"

namespace {

using namespace tirm;

std::vector<std::string> SplitCommaList(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : s) {
    if (c == ',') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tirm_cli: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

// Every flag this binary reads (AllocatorConfig's set plus the engine and
// CLI knobs); anything else on the command line is a typo the user must
// hear about, not a silently ignored key.
bool IsKnownFlag(const std::string& key) {
  static const std::set<std::string> kKnown = {
      // CLI
      "list", "allocator", "dataset", "bundle", "scale", "seed", "eval_sims",
      "sweep_lambda", "reuse_samples", "trace_out", "print_profile",
      // EngineQuery
      "kappa", "lambda", "beta", "budget_scale",
      // AllocatorConfig
      "max_total_seeds", "min_drop", "eps", "ell", "theta_cap", "theta_min",
      "kpt_max_samples", "threads", "weight_by_ctp",
      "exact_selection_fallback", "ctp_aware_coverage", "coverage_kernel",
      "sampler_kernel", "irie_alpha", "irie_rank_iterations",
      "irie_ap_truncation", "irie_max_push_hops", "mc_sims"};
  return kKnown.count(key) > 0;
}

int main(int argc, char** argv) {
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  for (const std::string& key : flags.Keys()) {
    if (!IsKnownFlag(key)) {
      return Fail(Status::InvalidArgument(
          "unknown flag --" + key + " (see the header of cli/tirm_cli.cc)"));
    }
  }

  Result<bool> list = flags.GetBoolStrict("list", false);
  if (!list.ok()) return Fail(list.status());
  if (*list) {
    std::printf("registered allocators:\n");
    for (const std::string& name : AllocatorRegistry::Global().Names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }

  Result<AllocatorConfig> config = AllocatorConfig::FromFlags(flags);
  if (!config.ok()) return Fail(config.status());

  // --bundle=<path> is shorthand for --dataset=bundle:<path>.
  std::string dataset = flags.GetString("dataset", "fig1");
  const std::string bundle_path = flags.GetString("bundle", "");
  if (!bundle_path.empty()) {
    if (flags.Has("dataset")) {
      return Fail(Status::InvalidArgument(
          "--bundle and --dataset are mutually exclusive"));
    }
    dataset = "bundle:" + bundle_path;
  }
  Result<double> scale = flags.GetDoubleStrict("scale", 0.01);
  if (!scale.ok()) return Fail(scale.status());
  if (!(*scale > 0.0) || !std::isfinite(*scale)) {  // also rejects NaN
    return Fail(Status::InvalidArgument("--scale must be positive and finite"));
  }
  Result<std::int64_t> seed_flag = flags.GetIntStrict("seed", 2015);
  if (!seed_flag.ok()) return Fail(seed_flag.status());
  Result<std::int64_t> eval_sims = flags.GetIntStrict("eval_sims", 2000);
  if (!eval_sims.ok()) return Fail(eval_sims.status());
  if (*eval_sims < 1) {
    return Fail(Status::InvalidArgument("eval_sims must be >= 1"));
  }
  // Pooled RR-sample reuse across sweep points / allocators (default on;
  // --reuse_samples=false resamples per run — identical results, slower
  // sweeps).
  Result<bool> reuse_samples = flags.GetBoolStrict("reuse_samples", true);
  if (!reuse_samples.ok()) return Fail(reuse_samples.status());

  const std::string trace_out = flags.GetString("trace_out", "");
  Result<bool> print_profile = flags.GetBoolStrict("print_profile", false);
  if (!print_profile.ok()) return Fail(print_profile.status());
  if (!trace_out.empty() || *print_profile) {
    obs::TraceRecorder::Global().Enable();
  }

  Result<EngineQuery> parsed_query = EngineQuery::FromFlags(flags);
  if (!parsed_query.ok()) return Fail(parsed_query.status());
  const EngineQuery query = *parsed_query;

  // Allocator list: a name, a comma list, or "all" (every registered one).
  std::vector<std::string> allocators;
  if (config->allocator == "all") {
    allocators = AllocatorRegistry::Global().Names();
    if (dataset != "fig1") {
      // GREEDY-MC is the small-graph reference oracle (O(n * sims) per
      // seed); on the large stand-ins it appears to hang. Require an
      // explicit request there.
      std::erase(allocators, std::string("greedy-mc"));
      std::printf(
          "note: greedy-mc excluded from --allocator=all on dataset \"%s\" "
          "(small-graph reference only); request it explicitly to run it.\n",
          dataset.c_str());
    }
  } else {
    allocators = SplitCommaList(config->allocator);
  }
  if (allocators.empty()) {
    return Fail(Status::InvalidArgument("no allocator selected"));
  }
  // Fail fast on typos before any (possibly expensive) run starts.
  for (const std::string& name : allocators) {
    if (!AllocatorRegistry::Global().Contains(name)) {
      return Fail(Status::NotFound("unknown allocator \"" + name +
                                   "\" (see --list)"));
    }
  }

  // Lambda sweep points ("" = just the --lambda value).
  std::vector<double> lambdas = {query.lambda};
  const std::string sweep = flags.GetString("sweep_lambda", "");
  if (!sweep.empty()) {
    lambdas.clear();
    for (const std::string& part : SplitCommaList(sweep)) {
      Result<double> v = Flags::ParseDouble(part);
      if (!v.ok() || !(*v >= 0.0)) {
        return Fail(Status::InvalidArgument(
            "--sweep_lambda: bad value \"" + part + "\""));
      }
      lambdas.push_back(*v);
    }
    if (lambdas.empty()) {
      return Fail(Status::InvalidArgument(
          "--sweep_lambda: no sweep points in \"" + sweep + "\""));
    }
  }

  const auto seed = static_cast<std::uint64_t>(*seed_flag);
  Rng build_rng(seed);
  Result<BuiltInstance> built = BuildNamedDataset(dataset, *scale, build_rng);
  if (!built.ok()) return Fail(built.status());

  AdAllocEngine engine(
      built.MoveValue(),
      {.eval_sims = static_cast<std::size_t>(*eval_sims), .seed = seed,
       .reuse_samples = *reuse_samples});
  std::printf(
      "dataset: %s  %s\nkappa=%d beta=%.2f budget_scale=%.2f "
      "eval_sims=%lld seed=%llu\n\n",
      engine.built().name.c_str(),
      FormatGraphStats(ComputeGraphStats(*engine.built().graph)).c_str(),
      query.kappa, query.beta, query.budget_scale,
      static_cast<long long>(*eval_sims),
      static_cast<unsigned long long>(seed));

  TablePrinter t({"allocator", "lambda", "total regret", "% of budget",
                  "revenue", "seeds", "distinct users", "time (s)"});
  for (const std::string& name : allocators) {
    AllocatorConfig run_config = *config;
    run_config.allocator = name;
    for (const double l : lambdas) {
      EngineQuery q = query;
      q.lambda = l;
      Result<EngineRun> run = engine.Run(run_config, q);
      if (!run.ok()) return Fail(run.status());
      const RegretReport& r = run->report;
      t.AddRow({name, TablePrinter::Num(l, 2),
                TablePrinter::Num(r.total_regret, 2),
                TablePrinter::Num(100.0 * r.RegretFractionOfBudget(), 1),
                TablePrinter::Num(r.total_revenue, 2),
                TablePrinter::Int(static_cast<long long>(r.total_seeds)),
                TablePrinter::Int(static_cast<long long>(r.distinct_targeted)),
                TablePrinter::Num(run->result.seconds, 2)});
    }
  }
  t.Print();
  if (const RrSampleStore* store = engine.sample_store(); store != nullptr) {
    const SampleCacheStats stats = store->LifetimeStats();
    std::printf(
        "\nsample store: %zu pooled ads, sampled %llu sets, reused %llu, "
        "arena %zu bytes (--reuse_samples=false to resample per run)\n",
        store->NumEntries(),
        static_cast<unsigned long long>(stats.sampled_sets),
        static_cast<unsigned long long>(stats.reused_sets),
        stats.arena_bytes);
  }
  if (*print_profile) {
    std::printf("\npipeline profile (by total wall time):\n");
    TablePrinter profile({"stage", "count", "total (ms)"});
    for (const obs::StageStats& stage :
         obs::TraceRecorder::Global().Summary()) {
      profile.AddRow({stage.name,
                      TablePrinter::Int(static_cast<long long>(stage.count)),
                      TablePrinter::Num(stage.total_ms, 2)});
    }
    profile.Print();
  }
  if (!trace_out.empty()) {
    obs::TraceRecorder::Global().Disable();
    if (Status s = obs::TraceRecorder::Global().WriteChromeTrace(trace_out);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("\ntrace written to %s (load in Perfetto)\n",
                trace_out.c_str());
  }
  return 0;
}
