// Ablation: RRC sets (direct CTP sampling) vs RR sets + delta-scaling.
//
// §5.2 argues that sampling RRC sets directly would need ~1/CTP more
// samples for the same accuracy (OPT shrinks by the CTP factor), so TIRM
// samples plain RR sets and scales marginals by delta (Theorem 5). This
// bench measures both estimators against the MC ground truth at equal
// sample counts: singleton-spread estimation error and wall time.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "diffusion/monte_carlo.h"
#include "rrset/rr_sampler.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.01);
  config.Print("bench_ablation_estimator: RR+delta-scaling vs direct RRC",
               /*supports_bundle=*/true);

  Rng rng(config.seed);
  BuiltInstance built = BuildBenchInstance(config, EpinionsLike(config.scale), rng);
  const Graph& g = *built.graph;
  ProblemInstance inst = built.MakeInstance(1, 0.0);
  const auto& probs = inst.EdgeProbsForAd(0);
  const double delta = 0.02;  // representative CTP
  const auto ctp = [delta](NodeId) { return delta; };
  const std::vector<float> node_ctps(g.num_nodes(),
                                     static_cast<float>(delta));

  // Ground truth: MC spread (with CTP) for the top-degree node.
  NodeId hub = 0;
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) > g.OutDegree(hub)) hub = u;
  }
  SpreadSimulator sim(g, probs);
  Rng mc_rng(config.seed + 1);
  const double truth =
      sim.EstimateSpreadWithCtp(std::vector<NodeId>{hub}, ctp, 60000, mc_rng)
          .mean();

  TablePrinter t({"#samples", "RR+scale est", "RR err %", "RR time (s)",
                  "RRC est", "RRC err %", "RRC time (s)"});
  for (const int samples : {20000, 80000, 320000}) {
    // RR + delta scaling.
    WallTimer rr_timer;
    RrSampler rr(g, probs);
    Rng r1(config.seed + 2);
    std::vector<NodeId> set;
    std::size_t rr_hits = 0;
    for (int i = 0; i < samples; ++i) {
      rr.SampleInto(r1, set);
      for (const NodeId v : set) {
        if (v == hub) {
          ++rr_hits;
          break;
        }
      }
    }
    const double rr_est = delta * g.num_nodes() *
                          static_cast<double>(rr_hits) / samples;
    const double rr_time = rr_timer.Seconds();

    // Direct RRC sampling.
    WallTimer rrc_timer;
    RrSampler rrc(g, probs, node_ctps);
    Rng r2(config.seed + 3);
    std::size_t rrc_hits = 0;
    for (int i = 0; i < samples; ++i) {
      rrc.SampleInto(r2, set);
      for (const NodeId v : set) {
        if (v == hub) {
          ++rrc_hits;
          break;
        }
      }
    }
    const double rrc_est =
        static_cast<double>(g.num_nodes()) * rrc_hits / samples;
    const double rrc_time = rrc_timer.Seconds();

    t.AddRow({TablePrinter::Int(samples), TablePrinter::Num(rr_est, 4),
              TablePrinter::Num(100.0 * std::fabs(rr_est - truth) /
                                    std::max(truth, 1e-9), 1),
              TablePrinter::Num(rr_time, 2), TablePrinter::Num(rrc_est, 4),
              TablePrinter::Num(100.0 * std::fabs(rrc_est - truth) /
                                    std::max(truth, 1e-9), 1),
              TablePrinter::Num(rrc_time, 2)});
  }
  std::printf("MC ground truth sigma_ctp({hub}) = %.4f (delta = %.2f)\n\n",
              truth, delta);
  t.Print();
  std::printf(
      "\nExpected: both unbiased, but the RRC estimator's relative error is "
      "~1/sqrt(delta) worse\nat equal samples (hub membership is delta times "
      "rarer), confirming §5.2's design choice.\n");
  return 0;
}
