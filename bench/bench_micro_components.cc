// Micro-benchmarks (google-benchmark) for the hot components:
// RR-set sampling, RRC sampling, forward MC cascades, coverage-greedy
// selection, IRIE rank iteration, graph generation and possible-world
// sampling. These quantify the per-operation costs that the paper's
// complexity discussion (§5) reasons about.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "alloc/irie.h"
#include "common/rng.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/possible_world.h"
#include "graph/generators.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"

namespace {

using namespace tirm;

struct Fixture {
  Graph graph;
  std::vector<float> probs;

  static const Fixture& Get() {
    static const Fixture* f = [] {
      auto* fx = new Fixture();
      Rng rng(42);
      fx->graph = RMatGraph(12, 60000, rng);  // 4096 nodes
      EdgeProbabilities ep = EdgeProbabilities::WeightedCascade(fx->graph);
      fx->probs.resize(fx->graph.num_edges());
      for (EdgeId e = 0; e < fx->graph.num_edges(); ++e) {
        fx->probs[e] = ep.Prob(e, 0);
      }
      return fx;
    }();
    return *f;
  }
};

void BM_RrSetSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  RrSampler sampler(f.graph, f.probs);
  Rng rng(1);
  std::vector<NodeId> set;
  std::size_t nodes = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, set);
    nodes += set.size();
    benchmark::DoNotOptimize(set.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["avg_set_size"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_RrSetSampling);

void BM_RrcSetSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const double delta = 0.02;
  const std::vector<float> ctps(f.graph.num_nodes(),
                                static_cast<float>(delta));
  RrSampler sampler(f.graph, f.probs, ctps);
  Rng rng(2);
  std::vector<NodeId> set;
  for (auto _ : state) {
    sampler.SampleInto(rng, set);
    benchmark::DoNotOptimize(set.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrcSetSampling);

void BM_ForwardCascade(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  SpreadSimulator sim(f.graph, f.probs);
  Rng rng(3);
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < f.graph.num_nodes(); u += 137) seeds.push_back(u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunOnce(seeds, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardCascade);

void BM_PossibleWorldSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(4);
  for (auto _ : state) {
    PossibleWorld w = PossibleWorld::Sample(f.graph, f.probs, rng);
    benchmark::DoNotOptimize(&w);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_PossibleWorldSampling);

void BM_CoverageGreedy(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const int num_sets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    RrCollection collection(f.graph.num_nodes());
    RrSampler sampler(f.graph, f.probs);
    Rng rng(5);
    std::vector<NodeId> set;
    for (int i = 0; i < num_sets; ++i) {
      sampler.SampleInto(rng, set);
      collection.AddSet(set);
    }
    state.ResumeTiming();
    CoverageHeap heap(&collection);
    for (int k = 0; k < 50; ++k) {
      const NodeId best = heap.PopBest([](NodeId) { return true; });
      if (best == kInvalidNode) break;
      collection.CommitSeed(best);
    }
  }
  state.SetLabel("select 50 seeds");
}
BENCHMARK(BM_CoverageGreedy)->Arg(20000)->Arg(80000);

void BM_IrieRankIteration(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  IrieEstimator irie(&f.graph, f.probs, {.alpha = 0.7, .rank_iterations = 20});
  for (auto _ : state) {
    irie.RecomputeRanks();
    benchmark::DoNotOptimize(irie.Rank(0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 20 *
      static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_IrieRankIteration);

void BM_RMatGeneration(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Graph g = RMatGraph(10, 10000, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_RMatGeneration);

void BM_Eq1Mixing(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(7);
  EdgeProbabilities per_topic =
      EdgeProbabilities::SampleExponential(f.graph, 10, 30.0, rng);
  TopicDistribution gamma = TopicDistribution::Concentrated(10, 3, 0.91);
  for (auto _ : state) {
    auto mixed = per_topic.MixForAd(gamma);
    benchmark::DoNotOptimize(mixed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_Eq1Mixing);

}  // namespace

BENCHMARK_MAIN();
