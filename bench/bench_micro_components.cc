// Micro-benchmarks (google-benchmark) for the hot components:
// RR-set sampling, RRC sampling, forward MC cascades, coverage-greedy
// selection, IRIE rank iteration, graph generation and possible-world
// sampling. These quantify the per-operation costs that the paper's
// complexity discussion (§5) reasons about.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "alloc/irie.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/possible_world.h"
#include "graph/generators.h"
#include "obs/trace.h"
#include "rrset/coverage_bitmap.h"
#include "rrset/parallel_rr_builder.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "rrset/sample_store.h"
#include "rrset/sampler_kernel.h"

namespace {

using namespace tirm;

struct Fixture {
  Graph graph;
  std::vector<float> probs;

  static const Fixture& Get() {
    static const Fixture* f = [] {
      auto* fx = new Fixture();
      Rng rng(42);
      fx->graph = RMatGraph(12, 60000, rng);  // 4096 nodes
      EdgeProbabilities ep = EdgeProbabilities::WeightedCascade(fx->graph);
      fx->probs.resize(fx->graph.num_edges());
      for (EdgeId e = 0; e < fx->graph.num_edges(); ++e) {
        fx->probs[e] = ep.Prob(e, 0);
      }
      return fx;
    }();
    return *f;
  }
};

void BM_RrSetSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  RrSampler sampler(f.graph, f.probs);
  Rng rng(1);
  std::vector<NodeId> set;
  std::size_t nodes = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, set);
    nodes += set.size();
    benchmark::DoNotOptimize(set.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["avg_set_size"] =
      static_cast<double>(nodes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_RrSetSampling);

void BM_RrcSetSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const double delta = 0.02;
  const std::vector<float> ctps(f.graph.num_nodes(),
                                static_cast<float>(delta));
  RrSampler sampler(f.graph, f.probs, ctps);
  Rng rng(2);
  std::vector<NodeId> set;
  for (auto _ : state) {
    sampler.SampleInto(rng, set);
    benchmark::DoNotOptimize(set.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrcSetSampling);

void BM_ForwardCascade(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  SpreadSimulator sim(f.graph, f.probs);
  Rng rng(3);
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < f.graph.num_nodes(); u += 137) seeds.push_back(u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunOnce(seeds, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardCascade);

void BM_PossibleWorldSampling(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(4);
  for (auto _ : state) {
    PossibleWorld w = PossibleWorld::Sample(f.graph, f.probs, rng);
    benchmark::DoNotOptimize(&w);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_PossibleWorldSampling);

// ------------------------------------------------- coverage-kernel section
// Compares the two coverage data paths of rrset/coverage_bitmap.h on the
// greedy primitives. Both kernels make bit-identical selections (enforced
// by tests/coverage_kernel_test.cc), so these measure pure data-path cost.

// One sampled pool per θ, shared by every coverage benchmark below (the
// sampling itself is BM_RrSetSampling's subject, not these benchmarks').
const RrSetPool& SharedCoveragePool(int num_sets) {
  static std::map<int, std::unique_ptr<RrSetPool>>* pools =
      new std::map<int, std::unique_ptr<RrSetPool>>();
  auto it = pools->find(num_sets);
  if (it == pools->end()) {
    const Fixture& f = Fixture::Get();
    auto pool = std::make_unique<RrSetPool>(f.graph.num_nodes());
    RrSampler sampler(f.graph, f.probs);
    Rng rng(5);
    std::vector<NodeId> set;
    for (int i = 0; i < num_sets; ++i) {
      sampler.SampleInto(rng, set);
      pool->AddSet(set);
    }
    it = pools->emplace(num_sets, std::move(pool)).first;
  }
  return *it->second;
}

CoverageKernel KernelArg(const benchmark::State& state) {
  return state.range(1) == 0 ? CoverageKernel::kScalar
                             : CoverageKernel::kBitmap;
}

// The 50 greedy seeds of a pool, kernel-invariant by the golden gate.
const std::vector<NodeId>& GreedySeeds(int num_sets) {
  static std::map<int, std::vector<NodeId>>* cache =
      new std::map<int, std::vector<NodeId>>();
  auto it = cache->find(num_sets);
  if (it == cache->end()) {
    const RrSetPool& pool = SharedCoveragePool(num_sets);
    RrCollection collection(&pool, CoverageKernel::kScalar);
    collection.AttachUpTo(static_cast<std::uint32_t>(pool.NumSets()));
    CoverageHeap heap(&collection);
    std::vector<NodeId> seeds;
    for (int k = 0; k < 50; ++k) {
      const NodeId best = heap.PopBest([](NodeId) { return true; });
      if (best == kInvalidNode) break;
      collection.CommitSeed(best);
      seeds.push_back(best);
    }
    it = cache->emplace(num_sets, std::move(seeds)).first;
  }
  return it->second;
}

// Full greedy path: lazy-heap argmax (initial build + stale refreshes) plus
// seed commits, per kernel. Note the kernels trade opposite ends of this
// path: scalar pays O(postings + members) per commit but answers each CELF
// staleness probe with one counter load, while bitmap commits in O(words)
// and pays an O(words) recount per probe. This instance (uniform random
// sets, heavy coverage ties) maximizes probe count, so it bounds the
// bitmap kernel's worst case; BM_CoverageCommitRecount below isolates the
// commit+recount data path the bitmap kernel is built for.
void BM_CoverageGreedy(benchmark::State& state) {
  const RrSetPool& pool = SharedCoveragePool(static_cast<int>(state.range(0)));
  const CoverageKernel kernel = KernelArg(state);
  for (auto _ : state) {
    state.PauseTiming();
    RrCollection collection(&pool, kernel);
    collection.AttachUpTo(static_cast<std::uint32_t>(pool.NumSets()));
    state.ResumeTiming();
    CoverageHeap heap(&collection);
    for (int k = 0; k < 50; ++k) {
      const NodeId best = heap.PopBest([](NodeId) { return true; });
      if (best == kInvalidNode) break;
      collection.CommitSeed(best);
    }
  }
  state.SetLabel(std::string(CoverageKernelName(kernel)) +
                 ", argmax+commit 50 seeds");
}
BENCHMARK(BM_CoverageGreedy)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({80000, 0})
    ->Args({80000, 1});

// The commit+recount primitive pair alone, on the precomputed greedy seed
// sequence: recount(v) then commit(v) per seed. The scalar kernel pays the
// postings scan + per-member scatter on commit; the bitmap kernel pays
// word-parallel AND-NOT popcount + OR. This is the data path the tentpole
// speedup gate measures.
double CommitRecountMs(const RrSetPool& pool, const std::vector<NodeId>& seeds,
                       CoverageKernel kernel) {
  RrCollection collection(&pool, kernel);
  collection.AttachUpTo(static_cast<std::uint32_t>(pool.NumSets()));
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t checksum = 0;
  for (const NodeId v : seeds) {
    checksum += collection.CoverageOf(v);
    checksum += collection.CommitSeed(v);
  }
  benchmark::DoNotOptimize(checksum);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void BM_CoverageCommitRecount(benchmark::State& state) {
  const int num_sets = static_cast<int>(state.range(0));
  const RrSetPool& pool = SharedCoveragePool(num_sets);
  const std::vector<NodeId>& seeds = GreedySeeds(num_sets);
  const CoverageKernel kernel = KernelArg(state);
  for (auto _ : state) {
    state.PauseTiming();
    RrCollection collection(&pool, kernel);
    collection.AttachUpTo(static_cast<std::uint32_t>(pool.NumSets()));
    state.ResumeTiming();
    std::uint64_t checksum = 0;
    for (const NodeId v : seeds) {
      checksum += collection.CoverageOf(v);
      checksum += collection.CommitSeed(v);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetLabel(std::string(CoverageKernelName(kernel)) +
                 ", recount+commit 50 seeds");
}
BENCHMARK(BM_CoverageCommitRecount)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({80000, 0})
    ->Args({80000, 1});

// Headline summary for BENCH_micro.json: best-of-5 commit+recount time per
// kernel at bench scale and the resulting speedup (the tentpole's >= 3x
// acceptance gate reads the "speedup" counter).
void BM_CoverageKernelSpeedup(benchmark::State& state) {
  const int num_sets = static_cast<int>(state.range(0));
  const RrSetPool& pool = SharedCoveragePool(num_sets);
  const std::vector<NodeId>& seeds = GreedySeeds(num_sets);
  double scalar_ms = 0.0;
  double bitmap_ms = 0.0;
  for (auto _ : state) {
    scalar_ms = 0.0;
    bitmap_ms = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const double s = CommitRecountMs(pool, seeds, CoverageKernel::kScalar);
      const double b = CommitRecountMs(pool, seeds, CoverageKernel::kBitmap);
      if (rep == 0 || s < scalar_ms) scalar_ms = s;
      if (rep == 0 || b < bitmap_ms) bitmap_ms = b;
    }
  }
  state.counters["scalar_ms"] = scalar_ms;
  state.counters["bitmap_ms"] = bitmap_ms;
  state.counters["speedup"] = bitmap_ms > 0.0 ? scalar_ms / bitmap_ms : 0.0;
  state.SetLabel(std::string("simd tier: ") + ActiveCoverageOps().name);
}
BENCHMARK(BM_CoverageKernelSpeedup)->Arg(80000)->Iterations(1);

// ------------------------------------------------- sampling-kernel section
// Compares the two reverse-BFS inner loops of rrset/sampler_kernel.h and
// the two pool-write paths of rrset/sample_store.h. Every benchmark here
// starts with BM_Sampling so CI's --benchmark_filter='BM_Sampling' emits
// exactly this section into BENCH_sampling.json.

// Denser weighted-cascade instance than Fixture: the skip kernel's win
// scales with 1/p = indeg, so the sampling gate measures at a mean in-degree
// (~39, mean p ~ 0.026) representative of the paper's social graphs rather
// than the sparse coverage fixture.
struct SamplingFixture {
  Graph graph;
  std::vector<float> probs;

  static const SamplingFixture& Get() {
    static const SamplingFixture* f = [] {
      auto* fx = new SamplingFixture();
      Rng rng(43);
      fx->graph = RMatGraph(12, 160000, rng);  // 4096 nodes
      EdgeProbabilities ep = EdgeProbabilities::WeightedCascade(fx->graph);
      fx->probs.resize(fx->graph.num_edges());
      for (EdgeId e = 0; e < fx->graph.num_edges(); ++e) {
        fx->probs[e] = ep.Prob(e, 0);
      }
      return fx;
    }();
    return *f;
  }
};

SamplerKernel SamplerKernelArg(const benchmark::State& state) {
  return state.range(0) == 0 ? SamplerKernel::kClassic : SamplerKernel::kSkip;
}

void BM_SamplingKernel(benchmark::State& state) {
  const SamplingFixture& f = SamplingFixture::Get();
  RrSampler sampler(f.graph, f.probs, SamplerKernelArg(state));
  Rng rng(1);
  std::vector<NodeId> set;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    sampler.SampleInto(rng, set);
    edges += sampler.last_width();
    benchmark::DoNotOptimize(set.data());
  }
  // items/sec == sets/sec; the counter reports the edge-examination rate
  // (widths are kernel-invariant in expectation, so this is comparable).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kIsRate);
  state.SetLabel(SamplerKernelName(sampler.kernel()));
}
BENCHMARK(BM_SamplingKernel)->Arg(0)->Arg(1);

// Wall-clock milliseconds to sample `num_sets` RR sets with `kernel`,
// accumulating the examined-edge count into `edges`.
double SampleSetsMs(SamplerKernel kernel, int num_sets, std::uint64_t* edges) {
  const SamplingFixture& f = SamplingFixture::Get();
  RrSampler sampler(f.graph, f.probs, kernel);
  Rng rng(9);
  std::vector<NodeId> set;
  *edges = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_sets; ++i) {
    sampler.SampleInto(rng, set);
    *edges += sampler.last_width();
    benchmark::DoNotOptimize(set.data());
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

// Headline summary for BENCH_sampling.json: best-of-5 sampling time per
// kernel at bench θ, sets/sec and ns/edge per kernel, and the speedup (the
// tentpole's >= 2x acceptance gate reads the "speedup" counter).
void BM_SamplingKernelSpeedup(benchmark::State& state) {
  const int num_sets = static_cast<int>(state.range(0));
  double classic_ms = 0.0, skip_ms = 0.0;
  std::uint64_t classic_edges = 0, skip_edges = 0;
  for (auto _ : state) {
    for (int rep = 0; rep < 5; ++rep) {
      std::uint64_t edges = 0;
      const double c = SampleSetsMs(SamplerKernel::kClassic, num_sets, &edges);
      if (rep == 0 || c < classic_ms) {
        classic_ms = c;
        classic_edges = edges;
      }
      const double s = SampleSetsMs(SamplerKernel::kSkip, num_sets, &edges);
      if (rep == 0 || s < skip_ms) {
        skip_ms = s;
        skip_edges = edges;
      }
    }
  }
  const double sets = static_cast<double>(num_sets);
  state.counters["classic_ms"] = classic_ms;
  state.counters["skip_ms"] = skip_ms;
  state.counters["speedup"] = skip_ms > 0.0 ? classic_ms / skip_ms : 0.0;
  state.counters["classic_sets_per_sec"] = sets / (classic_ms * 1e-3);
  state.counters["skip_sets_per_sec"] = sets / (skip_ms * 1e-3);
  state.counters["classic_ns_per_edge"] =
      classic_ms * 1e6 / static_cast<double>(classic_edges);
  state.counters["skip_ns_per_edge"] =
      skip_ms * 1e6 / static_cast<double>(skip_edges);
}
BENCHMARK(BM_SamplingKernelSpeedup)->Arg(20000)->Iterations(1);

// --------------------------------------------------- pool-write data path
// Legacy append (worker parts -> merged batch copy -> per-set AddSet copy)
// vs arena-direct adoption (worker parts moved wholesale into the pool,
// index built batched). Sampling itself is excluded: the parts are drawn
// once and the write paths replayed from them.

const std::vector<ParallelRrBuilder::Batch>& SharedSampledParts(int num_sets) {
  static std::map<int, std::vector<ParallelRrBuilder::Batch>>* cache =
      new std::map<int, std::vector<ParallelRrBuilder::Batch>>();
  auto it = cache->find(num_sets);
  if (it == cache->end()) {
    const SamplingFixture& f = SamplingFixture::Get();
    ParallelRrBuilder builder(f.graph, f.probs, {.num_threads = 4});
    Rng master(11);
    it = cache
             ->emplace(num_sets, builder.SampleChunks(
                                     static_cast<std::uint64_t>(num_sets),
                                     master))
             .first;
  }
  return it->second;
}

double LegacyWriteMs(const std::vector<ParallelRrBuilder::Batch>& parts,
                     NodeId num_nodes) {
  const auto start = std::chrono::steady_clock::now();
  // The pre-arena merge: concatenate worker parts into one flat batch...
  ParallelRrBuilder::Batch merged;
  merged.offsets.push_back(0);
  for (const auto& p : parts) {
    for (std::size_t k = 0; k < p.size(); ++k) {
      const auto set = p.Set(k);
      merged.nodes.insert(merged.nodes.end(), set.begin(), set.end());
      merged.offsets.push_back(merged.nodes.size());
    }
  }
  // ...then append set by set into the pool (the second copy).
  RrSetPool pool(num_nodes);
  for (std::size_t k = 0; k < merged.size(); ++k) pool.AddSet(merged.Set(k));
  benchmark::DoNotOptimize(pool.NumSets());
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

double ArenaWriteMs(std::vector<ParallelRrBuilder::Batch> parts,
                    NodeId num_nodes) {
  // `parts` is a by-value clone (made outside the timed region by the
  // caller); adoption consumes the buffers.
  const auto start = std::chrono::steady_clock::now();
  RrSetPool pool(num_nodes);
  for (auto& p : parts) pool.AdoptChunk(std::move(p.nodes), p.offsets);
  benchmark::DoNotOptimize(pool.NumSets());
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

void BM_SamplingStoreWrite(benchmark::State& state) {
  const SamplingFixture& f = SamplingFixture::Get();
  const int num_sets = static_cast<int>(state.range(0));
  const auto& parts = SharedSampledParts(num_sets);
  const bool arena = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ParallelRrBuilder::Batch> clone = parts;
    state.ResumeTiming();
    if (arena) {
      RrSetPool pool(f.graph.num_nodes());
      for (auto& p : clone) pool.AdoptChunk(std::move(p.nodes), p.offsets);
      benchmark::DoNotOptimize(pool.NumSets());
    } else {
      benchmark::DoNotOptimize(LegacyWriteMs(parts, f.graph.num_nodes()));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          num_sets);
  state.SetLabel(arena ? "arena-direct adopt" : "legacy merge+append");
}
BENCHMARK(BM_SamplingStoreWrite)->Args({40000, 0})->Args({40000, 1});

// Best-of-5 summary: the arena-direct acceptance gate reads "speedup".
void BM_SamplingStoreWriteSpeedup(benchmark::State& state) {
  const SamplingFixture& f = SamplingFixture::Get();
  const int num_sets = static_cast<int>(state.range(0));
  const auto& parts = SharedSampledParts(num_sets);
  double legacy_ms = 0.0, arena_ms = 0.0;
  for (auto _ : state) {
    for (int rep = 0; rep < 5; ++rep) {
      const double l = LegacyWriteMs(parts, f.graph.num_nodes());
      if (rep == 0 || l < legacy_ms) legacy_ms = l;
      std::vector<ParallelRrBuilder::Batch> clone = parts;
      const double a = ArenaWriteMs(std::move(clone), f.graph.num_nodes());
      if (rep == 0 || a < arena_ms) arena_ms = a;
    }
  }
  const double sets = static_cast<double>(num_sets);
  state.counters["legacy_ms"] = legacy_ms;
  state.counters["arena_ms"] = arena_ms;
  state.counters["speedup"] = arena_ms > 0.0 ? legacy_ms / arena_ms : 0.0;
  state.counters["legacy_sets_per_sec"] = sets / (legacy_ms * 1e-3);
  state.counters["arena_sets_per_sec"] = sets / (arena_ms * 1e-3);
}
BENCHMARK(BM_SamplingStoreWriteSpeedup)->Arg(40000)->Iterations(1);

// ---------------------------------------------- flight-recorder section
// Cost of an obs::TraceSpan on the disabled fast path (one relaxed atomic
// load + branch in the constructor and destructor) and while recording.
// The observability acceptance gate reads "overhead_pct" from
// BM_TraceDisabledOverhead: the disabled instrumentation cost as a
// percentage of real work at per-RR-set granularity — far finer than any
// production span (those wrap whole batches), so the deployed overhead is
// smaller still.

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Disable();
  for (auto _ : state) {
    obs::TraceSpan span("bench_disabled");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Clear();
  obs::TraceRecorder::Global().Enable();
  for (auto _ : state) {
    obs::TraceSpan span("bench_enabled");
    span.Counter("i", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  obs::TraceRecorder::Global().Disable();
  obs::TraceRecorder::Global().Clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count: every iteration appends one event, and staying
// well under the per-thread buffer cap keeps the drop path out of the
// measurement.
BENCHMARK(BM_TraceSpanEnabled)->Iterations(500000);

// A subtractive A/B of whole instrumented-vs-plain loops cannot resolve a
// sub-1% effect (code-layout jitter alone is a few percent either way),
// so the gate reads the ratio of two directly measured costs: a disabled
// span (tight span-only loop) over one RR-set sample — the finest
// granularity any production span sits at.
void BM_TraceDisabledOverhead(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  obs::TraceRecorder::Global().Disable();
  const int num_sets = 4000;
  const int span_iters = 1000000;
  double sample_ms = 0.0, span_only_ms = 0.0;
  for (auto _ : state) {
    for (int rep = 0; rep < 5; ++rep) {
      {
        RrSampler sampler(f.graph, f.probs);
        std::vector<NodeId> set;
        Rng rng(21);
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < num_sets; ++i) {
          sampler.SampleInto(rng, set);
          benchmark::DoNotOptimize(set.data());
        }
        const auto stop = std::chrono::steady_clock::now();
        const double p =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep == 0 || p < sample_ms) sample_ms = p;
      }
      {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < span_iters; ++i) {
          obs::TraceSpan span("bench_disabled_unit");
          benchmark::DoNotOptimize(&span);
        }
        const auto stop = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep == 0 || s < span_only_ms) span_only_ms = s;
      }
    }
  }
  const double ns_per_set = sample_ms * 1e6 / num_sets;
  const double ns_per_span = span_only_ms * 1e6 / span_iters;
  state.counters["set_ns"] = ns_per_set;
  state.counters["span_ns"] = ns_per_span;
  state.counters["overhead_pct"] =
      ns_per_set > 0.0 ? 100.0 * ns_per_span / ns_per_set : 0.0;
}
BENCHMARK(BM_TraceDisabledOverhead)->Iterations(1);

void BM_IrieRankIteration(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  IrieEstimator irie(&f.graph, f.probs, {.alpha = 0.7, .rank_iterations = 20});
  for (auto _ : state) {
    irie.RecomputeRanks();
    benchmark::DoNotOptimize(irie.Rank(0));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 20 *
      static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_IrieRankIteration);

void BM_RMatGeneration(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Graph g = RMatGraph(10, 10000, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_RMatGeneration);

void BM_Eq1Mixing(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(7);
  EdgeProbabilities per_topic =
      EdgeProbabilities::SampleExponential(f.graph, 10, 30.0, rng);
  TopicDistribution gamma = TopicDistribution::Concentrated(10, 3, 0.91);
  for (auto _ : state) {
    auto mixed = per_topic.MixForAd(gamma);
    benchmark::DoNotOptimize(mixed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.graph.num_edges()));
}
BENCHMARK(BM_Eq1Mixing);

}  // namespace

// Expanded BENCHMARK_MAIN(): identical flow, plus the library build type
// stamped into the JSON context (so a checked-in BENCH_micro.json can
// never silently come from a Debug build) and a loud warning when it is
// not release-like.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("library_build_type",
                              tirm::bench::LibraryBuildType());
  if (!tirm::bench::IsReleaseLikeBuild()) {
    std::fprintf(stderr,
                 "*** WARNING: benchmarking a \"%s\" build of the tirm "
                 "library; timings are\n*** not comparable — rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release before recording\n*** "
                 "BENCH_micro.json.\n",
                 tirm::bench::LibraryBuildType());
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
