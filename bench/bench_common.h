// Shared harness for the paper-table/figure benchmarks.
//
// Every bench binary runs with no arguments and prints (a) the experimental
// configuration, (b) an aligned table mirroring the paper's rows/series,
// and (c) a machine-readable CSV block. Knobs come from --flags or TIRM_*
// environment variables (see common/flags.h):
//
//   TIRM_SCALE        dataset scale multiplier (default varies per bench)
//   TIRM_EVAL_SIMS    Monte-Carlo evaluation runs (paper: 10000)
//   TIRM_EPS          TIM/TIRM epsilon (paper: 0.1 quality / 0.2 scale)
//   TIRM_THETA_CAP    per-ad RR-set cap (0 = uncapped)
//   TIRM_SEED         master RNG seed
//
// Algorithms are dispatched exclusively through the AllocatorRegistry
// (api/allocator_registry.h); benches never call per-algorithm entry
// points directly.

#ifndef TIRM_BENCH_BENCH_COMMON_H_
#define TIRM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "alloc/allocation.h"
#include "alloc/allocator.h"
#include "alloc/regret_evaluator.h"
#include "api/ad_alloc_engine.h"
#include "api/allocator_config.h"
#include "api/allocator_registry.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/memory_info.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datasets/dataset.h"
#include "graph/graph_stats.h"
#include "io/bundle_reader.h"

namespace tirm {
namespace bench {

/// Knobs shared by every bench, resolved from flags/env with per-bench
/// defaults.
struct BenchConfig {
  double scale = 0.01;
  std::size_t eval_sims = 2000;
  double eps = 0.25;
  std::uint64_t theta_cap = 1 << 18;
  std::uint64_t seed = 2015;
  double irie_alpha = 0.8;
  int threads = 1;  ///< RR-sampling worker threads (--threads, 0 = hardware)
  /// Prebuilt ".tirm" bundle path (--bundle / TIRM_BUNDLE; empty = build
  /// the bench's own dataset). Benches that resolve their instance through
  /// BuildBenchInstance run on the mmap'ed bundle instead of generating.
  std::string bundle;
  /// Machine-readable report path (--json_out; empty = don't write). The
  /// perf-trajectory benches default to BENCH_<figure>.json so runs are
  /// comparable across PRs without extra flags.
  std::string json_out;

  static BenchConfig FromFlags(const Flags& flags, double default_scale,
                               double default_eps = 0.25,
                               const char* default_json_out = "");

  /// Registry configuration carrying this bench's knobs; `name` fills
  /// AllocatorConfig::allocator.
  AllocatorConfig MakeAllocatorConfig(const std::string& name) const {
    AllocatorConfig c;
    c.allocator = name;
    c.eps = eps;
    c.theta_cap = theta_cap;
    c.num_threads = threads;
    c.irie_alpha = irie_alpha;
    return c;
  }

  /// Engine options carrying this bench's evaluation knobs. Sweep benches
  /// run through AdAllocEngine so every sweep point reuses the engine's
  /// pooled RR samples (RrSampleStore) instead of resampling.
  EngineOptions MakeEngineOptions(bool reuse_samples = true) const {
    EngineOptions o;
    o.eval_sims = eval_sims;
    o.seed = seed;
    o.reuse_samples = reuse_samples;
    return o;
  }

  /// Prints the config banner. Benches that resolve their instance
  /// through BuildBenchInstance pass supports_bundle=true; everywhere
  /// else a given --bundle would be silently ignored — results would be
  /// attributed to the wrong instance — so Print aborts instead.
  void Print(const char* bench_name, bool supports_bundle = false) const;
};

/// Resolves a bench's instance: the mmap'ed --bundle when one was given,
/// otherwise BuildDataset(spec). Aborts on a bad bundle — a bench must
/// fail loudly.
BuiltInstance BuildBenchInstance(const BenchConfig& config,
                                 const DatasetSpec& spec, Rng& rng);

/// Runs allocator `name` on `engine` at `query` and returns the full
/// EngineRun (allocation + MC report), aborting on error — a bench must
/// fail loudly.
EngineRun RunOnEngine(AdAllocEngine& engine, const std::string& name,
                      const EngineQuery& query, const BenchConfig& config);

/// One-line summary of an engine's pooled-sample store ("store: ...");
/// prints nothing when the engine has no store yet.
void PrintStoreStats(const AdAllocEngine& engine);

/// Runs any registered allocator by name with this bench's shared config
/// (aborts on unknown names — a bench must fail loudly).
AllocationResult RunAlgorithm(const std::string& name,
                              const ProblemInstance& instance,
                              const BenchConfig& config);

/// Runs a fully custom AllocatorConfig (ablation variants) with an
/// explicit algorithm seed.
AllocationResult RunConfigured(const AllocatorConfig& config,
                               const ProblemInstance& instance,
                               std::uint64_t seed);

/// The four paper algorithms in presentation order ("greedy-mc" is bench
/// -specific and only appears in ablations).
extern const char* const kAllAlgorithms[4];

/// Convenience: evaluates with MC and asserts validity (aborts on invalid —
/// a bench must never report numbers for an invalid allocation).
RegretReport EvaluateChecked(const ProblemInstance& instance,
                             const Allocation& allocation,
                             const BenchConfig& config, std::uint64_t salt);

/// The build type the tirm library was compiled as ("release", "debug",
/// ...): CMake's CMAKE_BUILD_TYPE lowercased, or an NDEBUG-derived
/// "release-like"/"debug" when configured without one. Stamped into every
/// BENCH_*.json so a report can never silently come from a Debug build.
const char* LibraryBuildType();

/// True when the library was built with optimizations (NDEBUG defined);
/// benches warn loudly before recording timings otherwise.
bool IsReleaseLikeBuild();

/// Machine-readable run report. The root object is pre-stamped with the
/// bench name and the shared config ("bench", "config": {scale, eval_sims,
/// eps, theta_cap, seed, threads}); benches attach their own sections
/// (workload params, wall times, cache stats) and call Write() at the end
/// — a no-op when --json_out is empty, a loud failure on IO errors.
class JsonReport {
 public:
  JsonReport(const char* bench_name, const BenchConfig& config);

  JsonValue& root() { return root_; }
  /// Shorthand: root().Set(key, value).
  void Set(const char* key, JsonValue value) {
    root_.Set(key, std::move(value));
  }

  void Write() const;

 private:
  std::string path_;
  JsonValue root_;
};

}  // namespace bench
}  // namespace tirm

#endif  // TIRM_BENCH_BENCH_COMMON_H_
