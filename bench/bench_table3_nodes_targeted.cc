// Table 3: number of distinct nodes targeted at least once vs attention
// bound kappa in {1..5}, at lambda = 0, for all four algorithms.
//
// Expected shape (paper §6.1): MYOPIC always targets all n users; MYOPIC+
// needs fewer as kappa grows; TIRM and GREEDY-IRIE need orders of magnitude
// fewer, decreasing in kappa (each node becomes "more available").

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_table3_nodes_targeted: Table 3 #nodes targeted vs kappa");

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(spec, rng);
    std::printf("\n--- %s (n = %u) ---\n", spec.name.c_str(),
                built.graph->num_nodes());
    TablePrinter t({"algorithm", "kappa=1", "kappa=2", "kappa=3", "kappa=4",
                    "kappa=5"});
    for (const char* algo : kAllAlgorithms) {
      std::vector<std::string> row = {algo};
      for (int kappa = 1; kappa <= 5; ++kappa) {
        ProblemInstance inst = built.MakeInstance(kappa, /*lambda=*/0.0);
        AllocationResult run = RunAlgorithm(algo, inst, config);
        Status valid = ValidateAllocation(inst, run.allocation);
        TIRM_CHECK(valid.ok()) << valid.ToString();
        row.push_back(TablePrinter::Int(static_cast<long long>(
            run.allocation.DistinctTargetedUsers(built.graph->num_nodes()))));
      }
      t.AddRow(row);
    }
    t.Print();
  }
  return 0;
}
