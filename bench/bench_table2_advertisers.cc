// Table 2: advertiser budget and cost-per-engagement summary statistics.
// The paper reports mean/min/max budgets and CPEs for the quality datasets;
// this bench samples the advertiser pools of the scaled stand-ins and
// prints the same summary (scaled budgets, unscaled CPEs).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.01);
  config.Print("bench_table2_advertisers: Table 2 budgets & CPEs");

  struct Row {
    DatasetSpec spec;
    const char* paper_budget;  // mean (min..max) at scale 1
    const char* paper_cpe;
  };
  const std::vector<Row> rows = {
      {FlixsterLike(config.scale), "375 (200..600)", "5.5 (5..6)"},
      {EpinionsLike(config.scale), "215 (100..350)", "4.35 (2.5..6)"},
  };

  TablePrinter t({"dataset", "budget mean", "budget min", "budget max",
                  "cpe mean", "cpe min", "cpe max", "paper budget",
                  "paper cpe"});
  for (const Row& row : rows) {
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(row.spec, rng);
    RunningStat budgets;
    RunningStat cpes;
    for (const auto& a : built.advertisers) {
      budgets.Add(a.budget);
      cpes.Add(a.cpe);
    }
    t.AddRow({row.spec.name, TablePrinter::Num(budgets.mean(), 1),
              TablePrinter::Num(budgets.min(), 1),
              TablePrinter::Num(budgets.max(), 1),
              TablePrinter::Num(cpes.mean(), 2),
              TablePrinter::Num(cpes.min(), 2),
              TablePrinter::Num(cpes.max(), 2), row.paper_budget,
              row.paper_cpe});
  }
  t.Print();
  std::printf(
      "\nBudgets scale with the dataset (x%.4g); CPEs keep the paper's "
      "ranges.\nCTPs are sampled U[0.01, 0.03] per (user, ad) as in §6.\n",
      config.scale);
  return 0;
}
