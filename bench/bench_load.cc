// bench_load — instance readiness: regenerate vs mmap a ".tirm" bundle.
//
// The data-plane claim behind the bundle refactor is that a serving
// process should not pay instance *generation* (R-MAT sampling, CSR
// construction, probability/CTP materialization) on every cold start when
// the instance can be mapped read-only from a prebuilt artifact. This
// bench measures exactly that, per dataset scale:
//
//   generate   — BuildDataset from the seed (what every binary did before)
//   write      — one-time bundle build cost (amortized across starts)
//   load+verify— mmap + checksums + full element validation
//   load mmap  — mmap + structural validation only (pre-verified file)
//
// and gates the numbers behind a determinism check: the myopic allocation
// computed on the generated instance and on the bundle round-trip must be
// identical (the all-allocator bit-identical gate lives in
// tests/bundle_io_test.cc).
//
// Writes BENCH_load.json by default.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "io/bundle_reader.h"
#include "io/bundle_writer.h"

namespace {

using namespace tirm;
using namespace tirm::bench;

struct LoadPoint {
  double scale = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t bundle_bytes = 0;
  double generate_s = 0.0;
  double write_s = 0.0;
  double load_verified_s = 0.0;
  double load_mmap_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.01,
                                              /*default_eps=*/0.25,
                                              "BENCH_load.json");
  const std::string dataset = flags.GetString("dataset", "flixster");
  config.Print("bench_load: cold-start — regenerate vs mmap bundle");

  JsonReport report("load", config);
  report.Set("dataset", JsonValue::String(dataset));
  JsonValue points = JsonValue::Array();

  TablePrinter t({"scale", "nodes", "edges", "bundle", "generate (s)",
                  "write (s)", "load+verify (s)", "load mmap (s)",
                  "speedup verify", "speedup mmap"});

  for (const double scale_mult : {1.0, 5.0}) {
    LoadPoint p;
    p.scale = config.scale * scale_mult;
    const Result<DatasetSpec> spec_lookup = StandInSpecByName(dataset, p.scale);
    TIRM_CHECK(spec_lookup.ok()) << "bench_load: " << spec_lookup.status().ToString();
    const DatasetSpec& spec = *spec_lookup;
    const std::string bundle_path =
        "BENCH_load_" + dataset + "_" + std::to_string(scale_mult) + ".tirm";

    // Cold start the old way: regenerate everything from the seed.
    WallTimer gen_timer;
    Rng gen_rng(config.seed);
    const BuiltInstance generated = BuildDataset(spec, gen_rng);
    p.generate_s = gen_timer.Seconds();
    p.nodes = generated.graph->num_nodes();
    p.edges = generated.graph->num_edges();

    // One-time bundle build.
    WallTimer write_timer;
    const Status written = WriteBundle(generated, bundle_path);
    TIRM_CHECK(written.ok()) << written.ToString();
    p.write_s = write_timer.Seconds();

    // Cold start the new way, with and without full verification.
    WallTimer verify_timer;
    Result<BuiltInstance> verified =
        LoadBundleInstance(bundle_path, {.verify = true});
    TIRM_CHECK(verified.ok()) << verified.status().ToString();
    p.load_verified_s = verify_timer.Seconds();

    WallTimer mmap_timer;
    Result<BuiltInstance> mapped =
        LoadBundleInstance(bundle_path, {.verify = false});
    TIRM_CHECK(mapped.ok()) << mapped.status().ToString();
    p.load_mmap_s = mmap_timer.Seconds();

    Result<BundleInfo> info = ReadBundleInfo(bundle_path, false);
    TIRM_CHECK(info.ok()) << info.status().ToString();
    p.bundle_bytes = info->file_size;

    // Determinism gate: same allocation from either source.
    const ProblemInstance gen_inst = generated.MakeInstance(1, 0.1);
    const ProblemInstance load_inst = verified->MakeInstance(1, 0.1);
    const AllocationResult a = RunAlgorithm("myopic", gen_inst, config);
    const AllocationResult b = RunAlgorithm("myopic", load_inst, config);
    TIRM_CHECK(a.allocation.seeds == b.allocation.seeds)
        << "bundle round-trip changed the myopic allocation at scale "
        << p.scale;

    const double speedup_verified = p.generate_s / p.load_verified_s;
    const double speedup_mmap = p.generate_s / p.load_mmap_s;
    t.AddRow({TablePrinter::Num(p.scale, 3),
              TablePrinter::Int(static_cast<long long>(p.nodes)),
              TablePrinter::Int(static_cast<long long>(p.edges)),
              HumanBytes(p.bundle_bytes), TablePrinter::Num(p.generate_s, 4),
              TablePrinter::Num(p.write_s, 4),
              TablePrinter::Num(p.load_verified_s, 4),
              TablePrinter::Num(p.load_mmap_s, 4),
              TablePrinter::Num(speedup_verified, 1) + "x",
              TablePrinter::Num(speedup_mmap, 1) + "x"});

    JsonValue point = JsonValue::Object();
    point.Set("scale", JsonValue::Number(p.scale));
    point.Set("nodes", JsonValue::Number(static_cast<double>(p.nodes)));
    point.Set("edges", JsonValue::Number(static_cast<double>(p.edges)));
    point.Set("bundle_bytes",
              JsonValue::Number(static_cast<double>(p.bundle_bytes)));
    point.Set("generate_seconds", JsonValue::Number(p.generate_s));
    point.Set("write_seconds", JsonValue::Number(p.write_s));
    point.Set("load_verified_seconds", JsonValue::Number(p.load_verified_s));
    point.Set("load_mmap_seconds", JsonValue::Number(p.load_mmap_s));
    point.Set("speedup_verified", JsonValue::Number(speedup_verified));
    point.Set("speedup_mmap", JsonValue::Number(speedup_mmap));
    point.Set("determinism_gate", JsonValue::String("ok"));
    points.Append(std::move(point));

    std::remove(bundle_path.c_str());
  }

  t.Print();
  std::printf(
      "\n(load+verify reads every byte for checksums; load mmap is the\n"
      " pre-verified serving path — structural validation only, pages\n"
      " fault in lazily on first use)\n");
  report.Set("points", std::move(points));
  report.Write();
  return 0;
}
