// Serving throughput and latency of the AllocationService (beyond the
// paper: the serving layer over AdAllocEngine).
//
// Workload: a mixed allocator x lambda x kappa request grid on the
// FLIXSTER-shaped instance, repeated for several passes. Three sections:
//   1. Cold vs warm store: the first pass pays RR sampling, repeat passes
//      serve from warm per-worker pools — same allocations, less time.
//   2. Worker scaling: sustained QPS and p50/p95/p99 queue/serve latency
//      at 1..N workers (fresh service per point). On a single-core
//      container the sweep plateaus at ~1x by construction.
//   3. Determinism spot-check: every response of a concurrent pass equals
//      the direct single-threaded engine.Run golden for that request
//      (aborts on mismatch — the bench doubles as a correctness gate).
//      The direct runs execute under the obs::TraceRecorder; their
//      per-stage aggregate lands in the report's "profile" section.
//
// --deadline_ms=<ms> (default 0 = none) attaches a per-request deadline
// to the worker-scaling section; expired responses are then tolerated and
// each worker-count row records its deadline-miss rate (misses are
// load-dependent, so CI keeps the default of no deadline).
//
// Evaluation (MC regret) is off by default here — it costs the same cold
// or warm and would dilute the serving signal; --serve_eval=true turns it
// on. Results land in BENCH_serving.json (--json_out to move/disable).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "serve/allocation_service.h"

namespace {

using namespace tirm;
using namespace tirm::bench;

serve::SweepRequest MakeWorkload(const BenchConfig& config) {
  serve::SweepRequest sweep;
  sweep.config = config.MakeAllocatorConfig("tirm");
  sweep.allocators = {"tirm", "myopic+", "greedy-irie"};
  sweep.kappas = {1, 2};
  sweep.lambdas = {0.0, 0.1, 0.5};
  sweep.id_prefix = "load";
  return sweep;
}

JsonValue LatencyJson(const serve::MetricsSnapshot& m) {
  JsonValue lat = JsonValue::Object();
  lat.Set("queue_p50_ms", JsonValue::Number(m.queue_p50 * 1e3));
  lat.Set("queue_p95_ms", JsonValue::Number(m.queue_p95 * 1e3));
  lat.Set("queue_p99_ms", JsonValue::Number(m.queue_p99 * 1e3));
  lat.Set("serve_p50_ms", JsonValue::Number(m.serve_p50 * 1e3));
  lat.Set("serve_p95_ms", JsonValue::Number(m.serve_p95 * 1e3));
  lat.Set("serve_p99_ms", JsonValue::Number(m.serve_p99 * 1e3));
  lat.Set("serve_mean_ms", JsonValue::Number(m.serve_mean * 1e3));
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.004,
                                              /*default_eps=*/0.3,
                                              /*default_json_out=*/
                                              "BENCH_serving.json");
  config.Print("bench_serving_throughput: AllocationService QPS + latency");
  JsonReport report("bench_serving_throughput", config);

  const bool serve_eval = flags.GetBool("serve_eval", false);
  const int max_workers = flags.GetThreads(/*default_value=*/4);
  const int passes =
      std::max(1, static_cast<int>(flags.GetInt("passes", 3)));
  const double deadline_ms = flags.GetDouble("deadline_ms", 0.0);

  serve::AllocationService::Options service_options;
  service_options.engine.seed = config.seed;
  service_options.engine.eval_sims = config.eval_sims;
  service_options.engine.evaluate = serve_eval;
  service_options.queue_capacity = 1024;

  const DatasetSpec spec = FlixsterLike(config.scale);
  const std::uint64_t build_seed = config.seed;
  const auto factory = [&spec, build_seed] {
    Rng rng(build_seed);
    return BuildDataset(spec, rng);
  };

  const serve::SweepRequest workload = MakeWorkload(config);
  const std::size_t grid_size = workload.Grid().size();
  std::printf("workload: %zu requests/pass (tirm + myopic+ + greedy-irie, "
              "kappa x lambda grid), %d passes, evaluation %s\n\n",
              grid_size, passes, serve_eval ? "on" : "off");
  report.Set("requests_per_pass",
             JsonValue::Number(static_cast<double>(grid_size)));
  report.Set("passes", JsonValue::Number(passes));
  report.Set("serve_eval", JsonValue::Bool(serve_eval));

  // ---- 1. Cold vs warm store (fixed worker count).
  std::vector<serve::AllocationResponse> golden_pass;
  {
    serve::AllocationService::Options options = service_options;
    options.num_workers = max_workers;
    serve::AllocationService service(factory, options);
    std::printf("--- cold vs warm store (%d workers, flixster-like) ---\n",
                service.num_workers());
    TablePrinter t({"pass", "seconds", "qps", "sampled sets", "reused sets"});
    JsonValue rows = JsonValue::Array();
    double cold_seconds = 0.0;
    double warm_seconds = 0.0;
    for (int pass = 0; pass < std::max(2, passes); ++pass) {
      const SampleCacheStats before = service.StoreStats();
      double seconds = 0.0;
      std::vector<serve::AllocationResponse> responses;
      {
        ScopedTimer timer(seconds);
        responses = service.SubmitSweep(workload);
      }
      const SampleCacheStats after = service.StoreStats();
      for (const serve::AllocationResponse& r : responses) {
        TIRM_CHECK(r.status.ok()) << r.id << ": " << r.status.ToString();
      }
      if (pass == 0) {
        cold_seconds = seconds;
        golden_pass = std::move(responses);
      } else {
        warm_seconds = seconds;  // keep the last warm pass
        // Warm passes must reproduce the cold pass bit-for-bit.
        TIRM_CHECK(responses.size() == golden_pass.size());
        for (std::size_t i = 0; i < responses.size(); ++i) {
          TIRM_CHECK(responses[i].run.result.allocation.seeds ==
                     golden_pass[i].run.result.allocation.seeds)
              << "warm pass diverged from cold pass at " << responses[i].id;
        }
      }
      t.AddRow({pass == 0 ? "cold" : ("warm " + std::to_string(pass)),
                TablePrinter::Num(seconds, 3),
                TablePrinter::Num(static_cast<double>(grid_size) / seconds, 1),
                TablePrinter::Int(static_cast<long long>(
                    after.sampled_sets - before.sampled_sets)),
                TablePrinter::Int(static_cast<long long>(
                    after.reused_sets - before.reused_sets))});
      JsonValue row = JsonValue::Object();
      row.Set("pass", JsonValue::String(pass == 0 ? "cold" : "warm"));
      row.Set("seconds", JsonValue::Number(seconds));
      row.Set("qps",
              JsonValue::Number(static_cast<double>(grid_size) / seconds));
      row.Set("sampled_sets",
              JsonValue::Number(static_cast<double>(after.sampled_sets -
                                                    before.sampled_sets)));
      row.Set("reused_sets",
              JsonValue::Number(static_cast<double>(after.reused_sets -
                                                    before.reused_sets)));
      rows.Append(std::move(row));
    }
    t.Print();
    std::printf("warm-store speedup: %.2fx (identical allocations)\n\n",
                cold_seconds / warm_seconds);
    JsonValue section = JsonValue::Object();
    section.Set("workers", JsonValue::Number(service.num_workers()));
    section.Set("rows", std::move(rows));
    section.Set("cold_seconds", JsonValue::Number(cold_seconds));
    section.Set("warm_seconds", JsonValue::Number(warm_seconds));
    section.Set("warm_speedup",
                JsonValue::Number(cold_seconds / warm_seconds));
    report.Set("cold_vs_warm", std::move(section));
  }

  // ---- 2. Sustained QPS and latency percentiles vs worker count.
  {
    std::vector<int> worker_counts = {1, 2, 4};
    if (std::find(worker_counts.begin(), worker_counts.end(), max_workers) ==
        worker_counts.end()) {
      worker_counts.push_back(max_workers);
    }
    std::sort(worker_counts.begin(), worker_counts.end());
    worker_counts.erase(
        std::unique(worker_counts.begin(), worker_counts.end()),
        worker_counts.end());

    std::printf("--- sustained QPS vs workers (%d passes each, warm) ---\n",
                passes);
    // With --deadline_ms set the sweep carries a per-request deadline:
    // expired responses are tolerated (that is the point — measure the
    // miss rate under load) instead of aborting the bench.
    serve::SweepRequest scaling_workload = workload;
    scaling_workload.timeout_ms = deadline_ms;
    TablePrinter t({"workers", "startup (s)", "seconds", "qps", "speedup",
                    "serve p50 (ms)", "serve p95 (ms)", "serve p99 (ms)",
                    "queue p95 (ms)", "miss %"});
    JsonValue rows = JsonValue::Array();
    double base_qps = 0.0;
    for (const int workers : worker_counts) {
      serve::AllocationService::Options options = service_options;
      options.num_workers = workers;
      options.autostart = false;
      serve::AllocationService service(factory, options);
      double startup_seconds = 0.0;
      {
        ScopedTimer startup_timer(startup_seconds);
        service.Start();  // builds one engine per worker
      }
      service.SubmitSweep(workload);  // warm-up pass, not measured
      service.ResetMetrics();  // keep warm-up out of the latency quantiles
      double seconds = 0.0;
      {
        ScopedTimer timer(seconds);
        for (int pass = 0; pass < passes; ++pass) {
          std::vector<serve::AllocationResponse> responses =
              service.SubmitSweep(scaling_workload);
          for (const serve::AllocationResponse& r : responses) {
            TIRM_CHECK(r.status.ok() ||
                       (deadline_ms > 0.0 &&
                        r.status.code() == StatusCode::kDeadlineExceeded))
                << r.id << ": " << r.status.ToString();
          }
        }
      }
      const double qps =
          static_cast<double>(grid_size) * passes / seconds;
      if (workers == worker_counts.front()) base_qps = qps;
      const serve::MetricsSnapshot m = service.Metrics();
      // Miss rate over the measured passes only (metrics were reset after
      // warm-up); always recorded — it is identically 0 without a deadline.
      const double miss_rate =
          m.received > 0
              ? static_cast<double>(m.expired) / static_cast<double>(m.received)
              : 0.0;
      t.AddRow({TablePrinter::Int(workers),
                TablePrinter::Num(startup_seconds, 2),
                TablePrinter::Num(seconds, 3), TablePrinter::Num(qps, 1),
                TablePrinter::Num(qps / base_qps, 2),
                TablePrinter::Num(m.serve_p50 * 1e3, 2),
                TablePrinter::Num(m.serve_p95 * 1e3, 2),
                TablePrinter::Num(m.serve_p99 * 1e3, 2),
                TablePrinter::Num(m.queue_p95 * 1e3, 2),
                TablePrinter::Num(100.0 * miss_rate, 1)});
      JsonValue row = JsonValue::Object();
      row.Set("workers", JsonValue::Number(workers));
      row.Set("startup_seconds", JsonValue::Number(startup_seconds));
      row.Set("seconds", JsonValue::Number(seconds));
      row.Set("qps", JsonValue::Number(qps));
      row.Set("speedup_vs_1", JsonValue::Number(qps / base_qps));
      row.Set("deadline_ms", JsonValue::Number(deadline_ms));
      row.Set("deadline_misses",
              JsonValue::Number(static_cast<double>(m.expired)));
      row.Set("deadline_miss_rate", JsonValue::Number(miss_rate));
      row.Set("latency", LatencyJson(m));
      rows.Append(std::move(row));
    }
    t.Print();
    std::printf(
        "(single-core containers plateau at ~1x; QPS scaling needs cores)\n\n");
    report.Set("worker_scaling", std::move(rows));
  }

  // ---- 3. Concurrent responses == direct engine.Run goldens.
  {
    std::printf("--- determinism: concurrent responses vs direct engine runs "
                "---\n");
    AdAllocEngine engine(factory(), service_options.engine);
    std::size_t checked = 0;
    const std::vector<serve::AllocationRequest> grid = workload.Grid();
    // The direct runs double as the trace sample: record them with the
    // flight recorder and report the per-stage aggregate below. (Tracing
    // never perturbs allocations, so the determinism check still holds.)
    obs::TraceRecorder::Global().Enable();
    // Every 5th request keeps this section cheap; passes 1..N already
    // cross-checked warm==cold above.
    for (std::size_t i = 0; i < grid.size(); i += 5) {
      Result<EngineRun> direct = engine.Run(grid[i].config, grid[i].query);
      TIRM_CHECK(direct.ok()) << direct.status().ToString();
      TIRM_CHECK(direct->result.allocation.seeds ==
                 golden_pass[i].run.result.allocation.seeds)
          << "served response diverged from direct engine.Run at "
          << grid[i].id;
      ++checked;
    }
    obs::TraceRecorder::Global().Disable();
    std::printf("checked %zu served responses against direct engine runs: "
                "all identical\n\n",
                checked);
    report.Set("determinism_checked",
               JsonValue::Number(static_cast<double>(checked)));

    std::printf("--- pipeline profile (direct runs, by total wall time) ---\n");
    TablePrinter pt({"stage", "count", "total (ms)"});
    JsonValue profile = JsonValue::Array();
    for (const obs::StageStats& stage :
         obs::TraceRecorder::Global().Summary()) {
      pt.AddRow({stage.name,
                 TablePrinter::Int(static_cast<long long>(stage.count)),
                 TablePrinter::Num(stage.total_ms, 2)});
      JsonValue p = JsonValue::Object();
      p.Set("name", JsonValue::String(stage.name));
      p.Set("count", JsonValue::Number(static_cast<double>(stage.count)));
      p.Set("total_ms", JsonValue::Number(stage.total_ms));
      profile.Append(std::move(p));
    }
    pt.Print();
    report.Set("profile", std::move(profile));
    obs::TraceRecorder::Global().Clear();
  }

  report.Write();
  return 0;
}
