// Ablation: covered-set removal (Algorithm 2) vs CTP-aware survival
// weighting (our extension, rrset/weighted_rr_collection.h).
//
// Removal semantics assume committed seeds are active with probability 1;
// with CTPs around 1-3% this underestimates later seeds' marginals, so the
// greedy keeps adding seeds and the realized revenue overshoots every
// budget — the systematic overshoot visible in the paper's Fig. 5a. The
// weighted variant discounts each RR set by the exact probability its root
// is still inactive, making the internal revenue estimate unbiased. This
// bench quantifies both effects: |internal - MC| estimation error and the
// final MC-evaluated regret.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.01,
                                              /*default_eps=*/0.2);
  config.Print(
      "bench_ablation_ctp_coverage: Algorithm 2 removal vs CTP-aware "
      "survival weighting");

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(spec, rng);
    std::printf("\n--- %s (kappa=3, lambda=0) ---\n", spec.name.c_str());
    TablePrinter t({"variant", "MC regret", "% of budget",
                    "mean |internal-MC| per ad", "seeds", "time (s)"});
    for (const bool weighted : {false, true}) {
      AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
      algo_config.ctp_aware_coverage = weighted;
      ProblemInstance inst = built.MakeInstance(3, 0.0);
      AllocationResult result =
          RunConfigured(algo_config, inst, config.seed + 17);
      const double seconds = result.seconds;
      RegretReport report = EvaluateChecked(inst, result.allocation, config,
                                            weighted ? 1 : 0);
      double est_err = 0.0;
      for (int i = 0; i < inst.num_ads(); ++i) {
        est_err += std::fabs(result.estimated_revenue[static_cast<std::size_t>(i)] -
                             report.ads[static_cast<std::size_t>(i)].revenue);
      }
      est_err /= inst.num_ads();
      t.AddRow({weighted ? "ctp-aware weighting (ours)" : "removal (Alg. 2)",
                TablePrinter::Num(report.total_regret, 2),
                TablePrinter::Num(100.0 * report.RegretFractionOfBudget(), 1),
                TablePrinter::Num(est_err, 3),
                TablePrinter::Int(static_cast<long long>(report.total_seeds)),
                TablePrinter::Num(seconds, 2)});
    }
    t.Print();
  }
  std::printf(
      "\nExpected: the weighted variant's internal estimates track the MC "
      "truth and its regret\ndrops by a large factor; removal overshoots "
      "(cf. the paper's Fig. 5a overshoot on FLIXSTER).\n");
  return 0;
}
