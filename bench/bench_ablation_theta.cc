// Ablation: sampling effort (epsilon / theta cap) vs regret, time, memory.
//
// Eq. 5 makes theta proportional to 1/eps^2; the theta cap bounds it
// further. This bench sweeps eps and the cap on the Flixster-shaped
// instance, reporting how much solution quality degrades as the RR sample
// shrinks — the practical knob for running TIRM on small machines.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_ablation_theta: sampling effort vs quality",
               /*supports_bundle=*/true);

  Rng rng(config.seed);
  BuiltInstance built = BuildBenchInstance(config, FlixsterLike(config.scale), rng);
  ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);

  TablePrinter t({"eps", "theta cap", "total RR sets", "regret",
                  "% of budget", "seeds", "time (s)", "RR bytes"});
  struct Setting {
    double eps;
    std::uint64_t cap;
  };
  const std::vector<Setting> settings = {
      {0.5, 1 << 15}, {0.5, 1 << 17}, {0.25, 1 << 17},
      {0.25, 1 << 19}, {0.1, 1 << 19},
  };
  for (const Setting& s : settings) {
    AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
    algo_config.eps = s.eps;
    algo_config.theta_cap = s.cap;
    AllocationResult result =
        RunConfigured(algo_config, inst, config.seed + 17);
    const double seconds = result.seconds;
    RegretReport report = EvaluateChecked(
        inst, result.allocation, config,
        static_cast<std::uint64_t>(s.eps * 100) + s.cap);
    t.AddRow({TablePrinter::Num(s.eps, 2),
              TablePrinter::Int(static_cast<long long>(s.cap)),
              TablePrinter::Int(static_cast<long long>(result.total_rr_sets)),
              TablePrinter::Num(report.total_regret, 1),
              TablePrinter::Num(100.0 * report.RegretFractionOfBudget(), 1),
              TablePrinter::Int(static_cast<long long>(report.total_seeds)),
              TablePrinter::Num(seconds, 2),
              HumanBytes(result.rr_memory_bytes)});
  }
  t.Print();
  std::printf(
      "\nExpected: regret improves (then saturates) as eps shrinks / the cap "
      "rises, at linearly\nincreasing time and memory — the Theorem 6 "
      "accuracy knob in action.\n");
  return 0;
}
