// Ablation: SelectBestNode selection rule.
//
// Algorithm 3 picks the node with maximum raw RR-coverage; an alternative
// weights coverage by the CTP, argmax delta(u,i)·cov(u), which directly
// maximizes the regret drop when CTPs vary across users. A third variant
// disables the Algorithm 1-style fallback scan (strictly-literal Algorithm
// 3), showing why the fallback matters when single-node marginals are
// large relative to budgets.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_ablation_selection: TIRM candidate-selection rule");

  struct Variant {
    const char* name;
    bool weight_by_ctp;
    bool fallback;
  };
  const std::vector<Variant> variants = {
      {"coverage (Alg. 3) + fallback", false, true},
      {"delta-weighted coverage", true, true},
      {"coverage, no fallback (literal Alg. 3)", false, false},
  };

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(spec, rng);
    ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
    std::printf("\n--- %s ---\n", spec.name.c_str());
    TablePrinter t({"variant", "total regret", "% of budget", "seeds",
                    "time (s)"});
    for (const Variant& v : variants) {
      AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
      algo_config.weight_by_ctp = v.weight_by_ctp;
      algo_config.exact_selection_fallback = v.fallback;
      AllocationResult result =
          RunConfigured(algo_config, inst, config.seed + 17);
      const double seconds = result.seconds;
      RegretReport report =
          EvaluateChecked(inst, result.allocation, config,
                          static_cast<std::uint64_t>(v.weight_by_ctp) * 2 +
                              static_cast<std::uint64_t>(v.fallback));
      t.AddRow({v.name, TablePrinter::Num(report.total_regret, 1),
                TablePrinter::Num(100.0 * report.RegretFractionOfBudget(), 1),
                TablePrinter::Int(static_cast<long long>(report.total_seeds)),
                TablePrinter::Num(seconds, 2)});
    }
    t.Print();
  }
  return 0;
}
