// Figure 1 / Examples 1-2: the toy-gadget table of the paper's intro.
// Regenerates the per-node click probabilities and totals for allocations
// A (myopic) and B (virality-aware) using exact possible-world enumeration,
// alongside the paper's independence-approximated values.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "diffusion/exact_spread.h"

namespace {

using namespace tirm;

double Exact(const BuiltInstance& built, const ProblemInstance& inst, AdId ad,
             const std::vector<NodeId>& seeds, NodeId target) {
  return ExactActivationProbability(
      *built.graph, inst.EdgeProbsForAd(ad), seeds,
      [&inst, ad](NodeId u) { return inst.Delta(u, ad); }, target);
}

double ExactTotal(const BuiltInstance& built, const ProblemInstance& inst,
                  AdId ad, const std::vector<NodeId>& seeds) {
  return ExactSpreadWithCtp(
      *built.graph, inst.EdgeProbsForAd(ad), seeds,
      [&inst, ad](NodeId u) { return inst.Delta(u, ad); });
}

}  // namespace

int main() {
  std::printf("== bench_fig1_toy: Figure 1 worked example ==\n\n");
  BuiltInstance built = BuildFigure1Instance();
  ProblemInstance inst = built.MakeInstance(1, 0.0);

  const std::vector<NodeId> all = {0, 1, 2, 3, 4, 5};
  // Paper's independence-approximated per-node values for allocation A.
  const double paper_a[6] = {0.9, 0.9, 0.93, 0.95, 0.95, 0.92};

  TablePrinter ta({"node", "Pr[click|A] exact", "paper (approx)"});
  for (NodeId v = 0; v < 6; ++v) {
    ta.AddRow({"v" + std::to_string(v + 1),
               TablePrinter::Num(Exact(built, inst, 0, all, v), 4),
               TablePrinter::Num(paper_a[v], 2)});
  }
  std::printf("Allocation A <all users -> ad a>:\n");
  ta.Print();

  const double total_a = ExactTotal(built, inst, 0, all);
  std::printf("\nTotal E[clicks] under A: %.4f (paper: 5.55)\n\n", total_a);

  // Allocation B: a->{v1,v2}, b->{v3}, c->{v4,v5}, d->{v6}.
  const std::vector<std::vector<NodeId>> b_seeds = {{0, 1}, {2}, {3, 4}, {5}};
  const char* names[4] = {"a", "b", "c", "d"};
  TablePrinter tb({"ad", "seeds", "E[clicks] exact", "budget", "|B - Pi|"});
  double total_b = 0.0;
  double regret_b = 0.0;
  for (AdId i = 0; i < 4; ++i) {
    const double clicks = ExactTotal(built, inst, i, b_seeds[i]);
    total_b += clicks;
    const double budget = inst.advertiser(i).budget;
    regret_b += std::abs(budget - clicks);
    tb.AddRow({names[i], TablePrinter::Int(static_cast<long long>(b_seeds[i].size())),
               TablePrinter::Num(clicks, 4), TablePrinter::Num(budget, 0),
               TablePrinter::Num(std::abs(budget - clicks), 4)});
  }
  std::printf("Allocation B <virality-aware>:\n");
  tb.Print();
  std::printf("\nTotal E[clicks] under B: %.4f (paper: 6.3)\n", total_b);

  const double regret_a = std::abs(4.0 - total_a) + 2.0 + 2.0 + 1.0;
  std::printf(
      "\nExample 1 (lambda=0):  regret(A) = %.3f (paper 6.6)   regret(B) = "
      "%.3f (paper 2.7)\n",
      regret_a, regret_b);
  std::printf(
      "Example 2 (lambda=0.1): regret(A) = %.3f (paper 7.2)   regret(B) = "
      "%.3f (paper 3.3)\n",
      regret_a + 0.6, regret_b + 0.6);
  return 0;
}
