// Figure 4 (a-d): total regret vs seed-penalty lambda in {0, 0.1, 0.5, 1},
// for kappa in {1, 5}, on the FLIXSTER- and EPINIONS-shaped instances.
//
// Expected shape (paper §6.1): regret rises with lambda for every
// algorithm; the algorithm ordering (TIRM < GREEDY-IRIE << MYOPIC(+)) is
// unchanged, and TIRM stays competitive even at lambda = 1, showing the
// lambda-assumption of Theorem 2 is conservative.
//
// Sweeps run through AdAllocEngine, so every (lambda, kappa) point borrows
// pooled RR samples from the engine's RrSampleStore instead of resampling
// — the per-dataset store line below the tables shows the reuse. A final
// section times a tirm lambda-sweep with reuse on vs off (the
// resample-per-point baseline) and reports the speedup.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_fig4_regret_vs_lambda: Fig. 4 total regret vs lambda");

  const std::vector<double> lambdas = {0.0, 0.1, 0.5, 1.0};
  const std::vector<int> kappas = {1, 5};

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    AdAllocEngine engine(BuildDataset(spec, rng), config.MakeEngineOptions());
    for (const int kappa : kappas) {
      std::printf("\n--- %s, kappa = %d (paper Fig. 4%c) ---\n",
                  spec.name.c_str(), kappa,
                  epinions ? (kappa == 1 ? 'c' : 'd')
                           : (kappa == 1 ? 'a' : 'b'));
      TablePrinter t({"lambda", "myopic", "myopic+", "greedy-irie", "tirm"});
      for (const double lambda : lambdas) {
        std::vector<std::string> row = {TablePrinter::Num(lambda, 1)};
        for (const char* algo : kAllAlgorithms) {
          EngineRun run = RunOnEngine(engine, algo,
                                      {.kappa = kappa, .lambda = lambda},
                                      config);
          row.push_back(TablePrinter::Num(run.report.total_regret, 1));
        }
        t.AddRow(row);
      }
      t.Print();
    }
    PrintStoreStats(engine);
  }

  // ---- Sample-reuse speedup: tirm lambda-sweep, pooled vs resampled.
  {
    const std::vector<double> sweep = {0.0, 0.1, 0.25, 0.5, 1.0};
    std::printf(
        "\n--- sample reuse: tirm lambda-sweep (%zu points, flixster-like) "
        "---\n",
        sweep.size());
    TablePrinter t({"mode", "seconds", "sampled sets", "reused sets",
                    "arena bytes"});
    double fresh_seconds = 0.0;
    double pooled_seconds = 0.0;
    for (const bool reuse : {false, true}) {
      Rng rng(config.seed);
      AdAllocEngine engine(BuildDataset(FlixsterLike(config.scale), rng),
                           config.MakeEngineOptions(reuse));
      std::uint64_t sampled = 0;
      std::uint64_t reused = 0;
      std::size_t arena = 0;
      WallTimer timer;
      for (const double lambda : sweep) {
        EngineRun run = RunOnEngine(engine, "tirm", {.lambda = lambda},
                                    config);
        sampled += run.result.cache.sampled_sets;
        reused += run.result.cache.reused_sets;
        arena = run.result.cache.arena_bytes;
      }
      const double seconds = timer.Seconds();
      (reuse ? pooled_seconds : fresh_seconds) = seconds;
      t.AddRow({reuse ? "pooled store" : "resample per point",
                TablePrinter::Num(seconds, 2),
                TablePrinter::Int(static_cast<long long>(sampled)),
                TablePrinter::Int(static_cast<long long>(reused)),
                HumanBytes(arena)});
    }
    t.Print();
    std::printf("speedup: %.2fx (identical allocations either way)\n",
                fresh_seconds / pooled_seconds);
  }
  return 0;
}
