// Figure 4 (a-d): total regret vs seed-penalty lambda in {0, 0.1, 0.5, 1},
// for kappa in {1, 5}, on the FLIXSTER- and EPINIONS-shaped instances.
//
// Expected shape (paper §6.1): regret rises with lambda for every
// algorithm; the algorithm ordering (TIRM < GREEDY-IRIE << MYOPIC(+)) is
// unchanged, and TIRM stays competitive even at lambda = 1, showing the
// lambda-assumption of Theorem 2 is conservative.
//
// Sweeps run through AdAllocEngine, so every (lambda, kappa) point borrows
// pooled RR samples from the engine's RrSampleStore instead of resampling
// — the per-dataset store line below the tables shows the reuse. A final
// section times a tirm lambda-sweep with reuse on vs off (the
// resample-per-point baseline) and reports the speedup.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008,
                                              /*default_eps=*/0.25,
                                              /*default_json_out=*/
                                              "BENCH_fig4.json");
  config.Print("bench_fig4_regret_vs_lambda: Fig. 4 total regret vs lambda");
  JsonReport report("bench_fig4_regret_vs_lambda", config);
  JsonValue panels = JsonValue::Array();
  WallTimer bench_timer;

  const std::vector<double> lambdas = {0.0, 0.1, 0.5, 1.0};
  const std::vector<int> kappas = {1, 5};

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    AdAllocEngine engine(BuildDataset(spec, rng), config.MakeEngineOptions());
    for (const int kappa : kappas) {
      std::printf("\n--- %s, kappa = %d (paper Fig. 4%c) ---\n",
                  spec.name.c_str(), kappa,
                  epinions ? (kappa == 1 ? 'c' : 'd')
                           : (kappa == 1 ? 'a' : 'b'));
      JsonValue panel = JsonValue::Object();
      panel.Set("dataset", JsonValue::String(spec.name));
      panel.Set("kappa", JsonValue::Number(kappa));
      JsonValue rows = JsonValue::Array();
      TablePrinter t({"lambda", "myopic", "myopic+", "greedy-irie", "tirm"});
      for (const double lambda : lambdas) {
        std::vector<std::string> row = {TablePrinter::Num(lambda, 1)};
        JsonValue json_row = JsonValue::Object();
        json_row.Set("lambda", JsonValue::Number(lambda));
        for (const char* algo : kAllAlgorithms) {
          EngineRun run = RunOnEngine(engine, algo,
                                      {.kappa = kappa, .lambda = lambda},
                                      config);
          row.push_back(TablePrinter::Num(run.report.total_regret, 1));
          JsonValue cell = JsonValue::Object();
          cell.Set("total_regret",
                   JsonValue::Number(run.report.total_regret));
          cell.Set("seconds", JsonValue::Number(run.result.seconds));
          json_row.Set(algo, std::move(cell));
        }
        t.AddRow(row);
        rows.Append(std::move(json_row));
      }
      t.Print();
      panel.Set("rows", std::move(rows));
      panels.Append(std::move(panel));
    }
    PrintStoreStats(engine);
  }
  report.Set("panels", std::move(panels));

  // ---- Sample-reuse speedup: tirm lambda-sweep, pooled vs resampled.
  {
    const std::vector<double> sweep = {0.0, 0.1, 0.25, 0.5, 1.0};
    std::printf(
        "\n--- sample reuse: tirm lambda-sweep (%zu points, flixster-like) "
        "---\n",
        sweep.size());
    TablePrinter t({"mode", "seconds", "sampled sets", "reused sets",
                    "arena bytes"});
    double fresh_seconds = 0.0;
    double pooled_seconds = 0.0;
    std::uint64_t pooled_sampled = 0;
    std::uint64_t pooled_reused = 0;
    std::size_t pooled_arena = 0;
    for (const bool reuse : {false, true}) {
      Rng rng(config.seed);
      AdAllocEngine engine(BuildDataset(FlixsterLike(config.scale), rng),
                           config.MakeEngineOptions(reuse));
      std::uint64_t sampled = 0;
      std::uint64_t reused = 0;
      std::size_t arena = 0;
      WallTimer timer;
      for (const double lambda : sweep) {
        EngineRun run = RunOnEngine(engine, "tirm", {.lambda = lambda},
                                    config);
        sampled += run.result.cache.sampled_sets;
        reused += run.result.cache.reused_sets;
        arena = run.result.cache.arena_bytes;
      }
      const double seconds = timer.Seconds();
      (reuse ? pooled_seconds : fresh_seconds) = seconds;
      if (reuse) {
        pooled_sampled = sampled;
        pooled_reused = reused;
        pooled_arena = arena;
      }
      t.AddRow({reuse ? "pooled store" : "resample per point",
                TablePrinter::Num(seconds, 2),
                TablePrinter::Int(static_cast<long long>(sampled)),
                TablePrinter::Int(static_cast<long long>(reused)),
                HumanBytes(arena)});
    }
    t.Print();
    std::printf("speedup: %.2fx (identical allocations either way)\n",
                fresh_seconds / pooled_seconds);
    JsonValue reuse = JsonValue::Object();
    reuse.Set("sweep_points",
              JsonValue::Number(static_cast<double>(sweep.size())));
    reuse.Set("fresh_seconds", JsonValue::Number(fresh_seconds));
    reuse.Set("pooled_seconds", JsonValue::Number(pooled_seconds));
    reuse.Set("speedup", JsonValue::Number(fresh_seconds / pooled_seconds));
    reuse.Set("pooled_sampled_sets",
              JsonValue::Number(static_cast<double>(pooled_sampled)));
    reuse.Set("pooled_reused_sets",
              JsonValue::Number(static_cast<double>(pooled_reused)));
    reuse.Set("pooled_arena_bytes",
              JsonValue::Number(static_cast<double>(pooled_arena)));
    report.Set("reuse", std::move(reuse));
  }
  report.Set("wall_seconds", JsonValue::Number(bench_timer.Seconds()));
  report.Write();
  return 0;
}
