// Figure 4 (a-d): total regret vs seed-penalty lambda in {0, 0.1, 0.5, 1},
// for kappa in {1, 5}, on the FLIXSTER- and EPINIONS-shaped instances.
//
// Expected shape (paper §6.1): regret rises with lambda for every
// algorithm; the algorithm ordering (TIRM < GREEDY-IRIE << MYOPIC(+)) is
// unchanged, and TIRM stays competitive even at lambda = 1, showing the
// lambda-assumption of Theorem 2 is conservative.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_fig4_regret_vs_lambda: Fig. 4 total regret vs lambda");

  const std::vector<double> lambdas = {0.0, 0.1, 0.5, 1.0};
  const std::vector<int> kappas = {1, 5};

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(spec, rng);
    for (const int kappa : kappas) {
      std::printf("\n--- %s, kappa = %d (paper Fig. 4%c) ---\n",
                  spec.name.c_str(), kappa,
                  epinions ? (kappa == 1 ? 'c' : 'd')
                           : (kappa == 1 ? 'a' : 'b'));
      TablePrinter t({"lambda", "myopic", "myopic+", "greedy-irie", "tirm"});
      for (const double lambda : lambdas) {
        ProblemInstance inst = built.MakeInstance(kappa, lambda);
        std::vector<std::string> row = {TablePrinter::Num(lambda, 1)};
        for (const char* algo : kAllAlgorithms) {
          AllocationResult run = RunAlgorithm(algo, inst, config);
          RegretReport report = EvaluateChecked(
              inst, run.allocation, config,
              static_cast<std::uint64_t>(lambda * 10) + kappa * 100);
          row.push_back(TablePrinter::Num(report.total_regret, 1));
        }
        t.AddRow(row);
      }
      t.Print();
    }
  }
  return 0;
}
