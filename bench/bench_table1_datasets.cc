// Table 1: statistics of the (synthetic stand-in) network datasets.
// The paper reports #nodes / #edges / type for FLIXSTER, EPINIONS, DBLP,
// LIVEJOURNAL; this bench builds the scaled stand-ins and prints both the
// realized sizes and the paper's originals for reference.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.01);
  config.Print("bench_table1_datasets: Table 1 dataset statistics");

  struct Row {
    DatasetSpec spec;
    const char* paper_nodes;
    const char* paper_edges;
    const char* type;
  };
  const std::vector<Row> rows = {
      {FlixsterLike(config.scale), "30K", "425K", "directed"},
      {EpinionsLike(config.scale), "76K", "509K", "directed"},
      {DblpLike(config.scale), "317K", "1.05M(x2)", "undirected"},
      {LiveJournalLike(config.scale / 10.0), "4.8M", "69M", "directed"},
  };

  TablePrinter t({"dataset", "nodes", "edges", "avg outdeg", "max outdeg",
                  "type", "paper nodes", "paper edges"});
  for (const Row& row : rows) {
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(row.spec, rng);
    GraphStats stats = ComputeGraphStats(*built.graph);
    t.AddRow({row.spec.name, TablePrinter::Int(stats.num_nodes),
              TablePrinter::Int(static_cast<long long>(stats.num_edges)),
              TablePrinter::Num(stats.avg_out_degree, 2),
              TablePrinter::Int(static_cast<long long>(stats.max_out_degree)),
              row.type, row.paper_nodes, row.paper_edges});
  }
  t.Print();
  std::printf(
      "\nNote: LiveJournal-like uses scale/10 so the default bench suite\n"
      "stays laptop-sized; R-MAT node counts round up to powers of two.\n");
  return 0;
}
