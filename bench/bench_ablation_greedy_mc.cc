// Ablation: GREEDY-MC (Algorithm 1 with Monte-Carlo marginals, the
// reference greedy) vs TIRM on a small instance where the MC oracle is
// still tractable.
//
// §5's motivation for TIRM is that Algorithm 1 with MC estimation is
// "prohibitively expensive and not scalable"; the supporting claim is that
// TIRM reaches comparable regret at a fraction of the cost. This bench
// quantifies both on a miniature topic-aware instance.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  // Deliberately tiny default: GREEDY-MC cost is O(n * sims) *per seed*.
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.002,
                                              /*default_eps=*/0.2);
  config.Print("bench_ablation_greedy_mc: Algorithm 1 (MC oracle) vs TIRM",
               /*supports_bundle=*/true);
  const std::size_t mc_sims =
      static_cast<std::size_t>(flags.GetInt("mc_sims", 200));

  Rng rng(config.seed);
  BuiltInstance built = BuildBenchInstance(config, FlixsterLike(config.scale), rng);
  ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
  std::printf("instance: %s, h=%d, total budget %.1f\n\n",
              FormatGraphStats(ComputeGraphStats(*built.graph)).c_str(),
              inst.num_ads(), inst.TotalBudget());

  TablePrinter t({"algorithm", "MC regret", "% of budget", "seeds",
                  "time (s)"});

  {
    AllocatorConfig algo_config = config.MakeAllocatorConfig("greedy-mc");
    algo_config.mc_sims = mc_sims;
    AllocationResult r = RunConfigured(algo_config, inst, config.seed + 5);
    RegretReport report = EvaluateChecked(inst, r.allocation, config, 1);
    t.AddRow({"greedy-mc (Alg. 1 reference)",
              TablePrinter::Num(report.total_regret, 2),
              TablePrinter::Num(100.0 * report.RegretFractionOfBudget(), 1),
              TablePrinter::Int(static_cast<long long>(report.total_seeds)),
              TablePrinter::Num(r.seconds, 2)});
  }
  for (const bool weighted : {false, true}) {
    AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
    algo_config.ctp_aware_coverage = weighted;
    AllocationResult r = RunConfigured(algo_config, inst, config.seed + 17);
    RegretReport report =
        EvaluateChecked(inst, r.allocation, config, weighted ? 3 : 2);
    t.AddRow({weighted ? "tirm (ctp-aware coverage)" : "tirm (Alg. 2)",
              TablePrinter::Num(report.total_regret, 2),
              TablePrinter::Num(100.0 * report.RegretFractionOfBudget(), 1),
              TablePrinter::Int(static_cast<long long>(report.total_seeds)),
              TablePrinter::Num(r.seconds, 2)});
  }
  t.Print();
  std::printf(
      "\nExpected: comparable regret, with TIRM one or more orders of "
      "magnitude faster —\nthe gap that §5 exists to close. GREEDY-MC cost "
      "explodes with n (per-seed full rescans).\n");
  return 0;
}
