// Table 4: memory usage vs number of advertisers h.
//
// The paper reports TIRM's memory growing steadily with h (2.59 GB at h=1
// to 60.8 GB at h=20 on DBLP) while GREEDY-IRIE needs only the graph
// (0.16-0.84 GB). This bench reports, per h: the *exact* RR-sample bytes
// from the RrSampleStore accounting — the pooled arena (flattened sets +
// inverted index, shared across consumers) and the per-run coverage views
// — plus the graph + probability footprint that bounds GREEDY-IRIE's
// requirement. Process peak RSS is kept as a cross-check only; the arena
// numbers are byte-accurate from container capacities, not RSS noise.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.02,
                                              /*default_eps=*/0.2);
  config.Print("bench_table4_memory: Table 4 memory usage vs h");

  const double budget = 5000.0 * config.scale;
  TablePrinter t({"h", "tirm arena (exact)", "tirm views (exact)",
                  "tirm total RR sets", "peak RSS (cross-check)",
                  "graph+probs bytes (IRIE bound)"});
  for (const int h : {1, 5, 10, 15, 20}) {
    Rng rng(config.seed + static_cast<std::uint64_t>(h));
    BuiltInstance built =
        BuildDataset(DblpLike(config.scale), rng, /*num_ads_override=*/h,
                     budget);
    ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
    AllocationResult result = RunConfigured(
        config.MakeAllocatorConfig("tirm"), inst, config.seed + 99);
    const std::size_t static_bytes =
        built.graph->MemoryBytes() + built.edge_probs->MemoryBytes() +
        built.ctps->MemoryBytes();
    t.AddRow({TablePrinter::Int(h), HumanBytes(result.cache.arena_bytes),
              HumanBytes(result.cache.view_bytes),
              TablePrinter::Int(static_cast<long long>(result.total_rr_sets)),
              HumanBytes(PeakRssBytes()), HumanBytes(static_bytes)});
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper Table 4): TIRM memory grows ~linearly in h "
      "(RR pools per ad);\nGREEDY-IRIE needs only graph+probabilities. "
      "Absolute numbers shrink with TIRM_SCALE and theta_cap.\nA shared "
      "RrSampleStore lets head-to-head runs and sweep points reuse one "
      "arena copy;\nonly the coverage-view bytes are paid per run.\n");
  return 0;
}
