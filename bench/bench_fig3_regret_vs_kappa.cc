// Figure 3 (a-d): total regret (log-scale in the paper) vs attention bound
// kappa in {1..5}, for lambda in {0, 0.5}, on the FLIXSTER- and
// EPINIONS-shaped instances, across MYOPIC / MYOPIC+ / GREEDY-IRIE / TIRM.
//
// Expected shape (paper §6.1): TIRM lowest, GREEDY-IRIE next, the myopic
// baselines one to two orders of magnitude worse (they overshoot every
// budget); TIRM's regret falls as kappa grows while the myopic baselines'
// regret *rises* with kappa (more seeds -> more uncontrolled virality).
//
// Sweeps run through AdAllocEngine: every (kappa, lambda) point borrows
// pooled RR samples from the engine's RrSampleStore instead of resampling.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_fig3_regret_vs_kappa: Fig. 3 total regret vs kappa");

  const std::vector<double> lambdas = {0.0, 0.5};
  const std::vector<int> kappas = {1, 2, 3, 4, 5};

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    AdAllocEngine engine(BuildDataset(spec, rng), config.MakeEngineOptions());
    for (const double lambda : lambdas) {
      std::printf("\n--- %s, lambda = %.1f (paper Fig. 3%c) ---\n",
                  spec.name.c_str(), lambda,
                  epinions ? (lambda == 0.0 ? 'c' : 'd')
                           : (lambda == 0.0 ? 'a' : 'b'));
      TablePrinter t({"kappa", "myopic", "myopic+", "greedy-irie", "tirm",
                      "tirm % of budget"});
      for (const int kappa : kappas) {
        std::vector<std::string> row = {TablePrinter::Int(kappa)};
        double tirm_regret = 0.0;
        for (const char* algo : kAllAlgorithms) {
          EngineRun run = RunOnEngine(engine, algo,
                                      {.kappa = kappa, .lambda = lambda},
                                      config);
          row.push_back(TablePrinter::Num(run.report.total_regret, 1));
          if (std::string(algo) == "tirm") {
            tirm_regret = run.report.RegretFractionOfBudget();
          }
        }
        row.push_back(TablePrinter::Num(100.0 * tirm_regret, 1));
        t.AddRow(row);
      }
      t.Print();
    }
    PrintStoreStats(engine);
  }
  std::printf(
      "\nPaper reference points (scale 1.0): FLIXSTER lambda=0 kappa=1 -> "
      "TIRM 2.5%%, GREEDY-IRIE 26.1%%,\nMYOPIC 122%%, MYOPIC+ 141%% of total "
      "budget; EPINIONS: 6.5%% / 15.9%% / 145%% / 205%%.\n");
  return 0;
}
