#include "bench/bench_common.h"

namespace tirm {
namespace bench {

// CMake stamps the real CMAKE_BUILD_TYPE (lowercased); without it, fall
// back to the NDEBUG probe — "release-like" vs "debug" is the distinction
// that matters for whether a number is comparable across runs.
const char* LibraryBuildType() {
#if defined(TIRM_LIBRARY_BUILD_TYPE)
  return TIRM_LIBRARY_BUILD_TYPE;
#elif defined(NDEBUG)
  return "release-like";
#else
  return "debug";
#endif
}

bool IsReleaseLikeBuild() {
#if defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

const char* const kAllAlgorithms[4] = {"myopic", "myopic+", "greedy-irie",
                                       "tirm"};

BenchConfig BenchConfig::FromFlags(const Flags& flags, double default_scale,
                                   double default_eps,
                                   const char* default_json_out) {
  BenchConfig c;
  c.scale = flags.GetDouble("scale", default_scale);
  c.eval_sims =
      static_cast<std::size_t>(flags.GetInt("eval_sims", 2000));
  c.eps = flags.GetDouble("eps", default_eps);
  c.theta_cap =
      static_cast<std::uint64_t>(flags.GetInt("theta_cap", 1 << 18));
  c.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2015));
  c.irie_alpha = flags.GetDouble("irie_alpha", 0.8);
  c.threads = flags.GetThreads(1);
  c.bundle = flags.GetString("bundle", "");
  c.json_out = flags.GetString("json_out", default_json_out);
  return c;
}

BuiltInstance BuildBenchInstance(const BenchConfig& config,
                                 const DatasetSpec& spec, Rng& rng) {
  if (config.bundle.empty()) return BuildDataset(spec, rng);
  Result<BuiltInstance> loaded = LoadBundleInstance(config.bundle);
  TIRM_CHECK(loaded.ok()) << loaded.status().ToString();
  return loaded.MoveValue();
}

JsonReport::JsonReport(const char* bench_name, const BenchConfig& config)
    : path_(config.json_out), root_(JsonValue::Object()) {
  root_.Set("bench", JsonValue::String(bench_name));
  JsonValue cfg = JsonValue::Object();
  cfg.Set("scale", JsonValue::Number(config.scale));
  cfg.Set("eval_sims",
          JsonValue::Number(static_cast<double>(config.eval_sims)));
  cfg.Set("eps", JsonValue::Number(config.eps));
  cfg.Set("theta_cap",
          JsonValue::Number(static_cast<double>(config.theta_cap)));
  cfg.Set("seed", JsonValue::Number(static_cast<double>(config.seed)));
  cfg.Set("threads", JsonValue::Number(config.threads));
  cfg.Set("library_build_type", JsonValue::String(LibraryBuildType()));
  root_.Set("config", std::move(cfg));
}

void JsonReport::Write() const {
  if (path_.empty()) return;
  const Status written = WriteJsonFile(path_, root_);
  TIRM_CHECK(written.ok()) << written.ToString();
  std::printf("\nwrote %s\n", path_.c_str());
}

void BenchConfig::Print(const char* bench_name, bool supports_bundle) const {
  TIRM_CHECK(bundle.empty() || supports_bundle)
      << bench_name << " does not support --bundle (it builds its own "
      << "instances); drop the flag";
  if (!bundle.empty()) {
    std::printf("bundle: %s (mmap'ed; replaces the generated dataset)\n",
                bundle.c_str());
  }
  if (!IsReleaseLikeBuild()) {
    std::printf(
        "*** WARNING: the tirm library was built as \"%s\" (assertions on, "
        "optimizations off).\n*** Timings from this binary are NOT "
        "comparable across runs — rebuild with\n*** "
        "-DCMAKE_BUILD_TYPE=Release before recording any BENCH_*.json.\n\n",
        LibraryBuildType());
    std::fprintf(stderr,
                 "bench: WARNING: benchmarking a %s build of the tirm "
                 "library\n",
                 LibraryBuildType());
  }
  std::printf(
      "== %s ==\n"
      "config: scale=%.4g eval_sims=%zu eps=%.2f theta_cap=%llu seed=%llu "
      "threads=%d\n"
      "(paper settings: eval_sims=10000, eps=0.1 quality / 0.2 scalability,\n"
      " no theta cap; raise via TIRM_EVAL_SIMS / TIRM_EPS / TIRM_THETA_CAP /\n"
      " TIRM_SCALE env vars to approach them; TIRM_THREADS / --threads\n"
      " parallelizes RR-set sampling)\n\n",
      bench_name, scale, eval_sims, eps,
      static_cast<unsigned long long>(theta_cap),
      static_cast<unsigned long long>(seed), threads);
}

AllocationResult RunAlgorithm(const std::string& name,
                              const ProblemInstance& instance,
                              const BenchConfig& config) {
  return RunConfigured(config.MakeAllocatorConfig(name), instance,
                       config.seed + 17);
}

AllocationResult RunConfigured(const AllocatorConfig& config,
                               const ProblemInstance& instance,
                               std::uint64_t seed) {
  Result<std::unique_ptr<Allocator>> allocator =
      AllocatorRegistry::Global().Create(config);
  TIRM_CHECK(allocator.ok()) << allocator.status().ToString();
  Rng rng(seed);
  return allocator.value()->Allocate(instance, rng);
}

EngineRun RunOnEngine(AdAllocEngine& engine, const std::string& name,
                      const EngineQuery& query, const BenchConfig& config) {
  Result<EngineRun> run = engine.Run(config.MakeAllocatorConfig(name), query);
  TIRM_CHECK(run.ok()) << run.status().ToString();
  return run.MoveValue();
}

void PrintStoreStats(const AdAllocEngine& engine) {
  const RrSampleStore* store = engine.sample_store();
  if (store == nullptr) return;
  const SampleCacheStats stats = store->LifetimeStats();
  std::printf(
      "store: %zu pooled ads, arena %s, sampled %llu sets, reused %llu, "
      "top-ups %llu, kpt hits %llu/%llu\n",
      store->NumEntries(), HumanBytes(stats.arena_bytes).c_str(),
      static_cast<unsigned long long>(stats.sampled_sets),
      static_cast<unsigned long long>(stats.reused_sets),
      static_cast<unsigned long long>(stats.top_ups),
      static_cast<unsigned long long>(stats.kpt_cache_hits),
      static_cast<unsigned long long>(stats.kpt_estimations));
}

RegretReport EvaluateChecked(const ProblemInstance& instance,
                             const Allocation& allocation,
                             const BenchConfig& config, std::uint64_t salt) {
  Status valid = ValidateAllocation(instance, allocation);
  TIRM_CHECK(valid.ok()) << valid.ToString();
  RegretEvaluator evaluator(&instance, {.num_sims = config.eval_sims});
  Rng rng(config.seed + 0x9000 + salt);
  return evaluator.Evaluate(allocation, rng);
}

}  // namespace bench
}  // namespace tirm
