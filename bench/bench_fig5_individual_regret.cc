// Figure 5 (a-b): distribution of per-ad budget-regrets (revenue - budget)
// for TIRM vs GREEDY-IRIE at lambda = 0, kappa = 5.
//
// Expected shape (paper §6.1): TIRM's per-ad deviations are small and
// uniform; GREEDY-IRIE's are heavily skewed — on the Flixster-shaped
// instance it overshoots (often several times TIRM's deviation), while on
// the Epinions-shaped instance it falls short on most ads.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print(
      "bench_fig5_individual_regret: Fig. 5 revenue-budget per ad "
      "(lambda=0, kappa=5)");

  for (const bool epinions : {false, true}) {
    DatasetSpec spec =
        epinions ? EpinionsLike(config.scale) : FlixsterLike(config.scale);
    Rng rng(config.seed);
    BuiltInstance built = BuildDataset(spec, rng);
    ProblemInstance inst = built.MakeInstance(/*kappa=*/5, /*lambda=*/0.0);

    AllocationResult tirm_run = RunAlgorithm("tirm", inst, config);
    AllocationResult irie_run = RunAlgorithm("greedy-irie", inst, config);
    RegretReport tirm_report =
        EvaluateChecked(inst, tirm_run.allocation, config, 1);
    RegretReport irie_report =
        EvaluateChecked(inst, irie_run.allocation, config, 2);

    std::printf("\n--- %s (paper Fig. 5%c) ---\n", spec.name.c_str(),
                epinions ? 'b' : 'a');
    TablePrinter t({"ad", "budget", "tirm rev-budget", "irie rev-budget",
                    "tirm seeds", "irie seeds"});
    for (int i = 0; i < inst.num_ads(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      t.AddRow({TablePrinter::Int(i),
                TablePrinter::Num(tirm_report.ads[idx].budget, 1),
                TablePrinter::Num(tirm_report.ads[idx].revenue -
                                      tirm_report.ads[idx].budget,
                                  2),
                TablePrinter::Num(irie_report.ads[idx].revenue -
                                      irie_report.ads[idx].budget,
                                  2),
                TablePrinter::Int(
                    static_cast<long long>(tirm_report.ads[idx].num_seeds)),
                TablePrinter::Int(
                    static_cast<long long>(irie_report.ads[idx].num_seeds))});
    }
    t.Print();
    std::printf("totals: tirm budget-regret %.1f, irie budget-regret %.1f\n",
                tirm_report.total_budget_regret,
                irie_report.total_budget_regret);
  }
  return 0;
}
