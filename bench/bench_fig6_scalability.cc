// Figure 6 (a-d): running time of TIRM and GREEDY-IRIE on the DBLP- and
// LIVEJOURNAL-shaped instances.
//   (a) DBLP: vary h (number of ads), budgets fixed;
//   (b) DBLP: vary per-ad budget, h = 5;
//   (c) LIVEJOURNAL: vary h (TIRM only — the paper excludes IRIE here
//       because it did not finish within 48 hours for h >= 5);
//   (d) LIVEJOURNAL: vary budget, h = 5 (TIRM only).
//
// Setup mirrors §6.2: Weighted Cascade, CPE = CTP = 1, lambda = 0,
// kappa = 1, every ad shares the same topic distribution (full competition
// for the same influencers). Expected shape: TIRM scales ~linearly in h and
// stays flat in budget; GREEDY-IRIE grows super-linearly and is orders of
// magnitude slower.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "obs/trace.h"
#include "rrset/parallel_rr_builder.h"
#include "rrset/sharded_store.h"

namespace {

using namespace tirm;
using namespace tirm::bench;

// ---- Parallel RR-set engine: generation throughput vs worker threads.
//
// Samples a fixed batch of RR sets on the DBLP-shaped instance with
// ParallelRrBuilder at 1/2/4/8 workers and reports sets/s plus the speedup
// over a single worker. Also runs full TIRM serially and with the largest
// thread count to confirm the allocations remain statistically equivalent
// (same #seeds ballpark and revenue within Monte-Carlo noise).
void RunThreadSweep(const BenchConfig& config,
                    const std::vector<int>& thread_counts, JsonValue* out) {
  Rng build_rng(config.seed + 101);
  const BuiltInstance built = BuildDataset(DblpLike(config.scale), build_rng,
                                           /*num_ads_override=*/1,
                                           /*budget_override=*/-1.0);
  const ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
  const std::uint64_t batch = 20000;

  std::printf("\n--- parallel RR-set engine: throughput vs threads (%llu sets, "
              "dblp-like) ---\n",
              static_cast<unsigned long long>(batch));
  TablePrinter t({"threads", "seconds", "sets/s", "speedup", "avg |R|"});
  JsonValue rows = JsonValue::Array();
  double base_seconds = 0.0;
  for (const int threads : thread_counts) {
    ParallelRrBuilder builder(*built.graph, inst.EdgeProbsForAd(0),
                              {.num_threads = threads});
    Rng rng(config.seed + 202);  // same master stream per row
    WallTimer timer;
    const ParallelRrBuilder::Batch sets = builder.SampleBatch(batch, rng);
    const double seconds = timer.Seconds();
    if (threads == thread_counts.front()) base_seconds = seconds;
    const double avg_size = static_cast<double>(sets.nodes.size()) /
                            static_cast<double>(sets.size());
    t.AddRow({TablePrinter::Int(threads), TablePrinter::Num(seconds, 3),
              TablePrinter::Num(static_cast<double>(batch) / seconds, 0),
              TablePrinter::Num(base_seconds / seconds, 2),
              TablePrinter::Num(avg_size, 1)});
    JsonValue row = JsonValue::Object();
    row.Set("threads", JsonValue::Number(threads));
    row.Set("seconds", JsonValue::Number(seconds));
    row.Set("sets_per_second",
            JsonValue::Number(static_cast<double>(batch) / seconds));
    row.Set("speedup", JsonValue::Number(base_seconds / seconds));
    rows.Append(std::move(row));
  }
  t.Print();
  out->Set("thread_sweep", std::move(rows));

  std::printf("\n--- TIRM serial vs parallel sampling (statistical "
              "equivalence) ---\n");
  TablePrinter cmp({"threads", "tirm (s)", "seeds", "est revenue"});
  for (const int threads : {1, thread_counts.back()}) {
    AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
    algo_config.num_threads = threads;
    const AllocationResult result =
        RunConfigured(algo_config, inst, config.seed + 17);
    cmp.AddRow({TablePrinter::Int(threads),
                TablePrinter::Num(result.seconds, 2),
                TablePrinter::Int(
                    static_cast<long long>(result.allocation.TotalSeeds())),
                TablePrinter::Num(result.TotalEstimatedRevenue(), 1)});
  }
  cmp.Print();
}

// ---- Sharded sampling plane: K = 1/2/4 shards on a `file:` SNAP-style
// graph (an RMAT instance round-tripped through the SNAP edge-list ingest
// path, so the sweep exercises exactly what a real snap.stanford.edu dump
// would).
//
// Two measurements per K:
//   * Sampling phase: each shard grows its pool to the same GLOBAL θ
//     watermark, sampling only the global chunks it owns. Shards share no
//     mutable state — in the router topology each one is a separate
//     process — so the phase latency is the slowest shard
//     (critical path), not the sum. Per-shard times here are measured
//     sequentially on one host; "sampling_phase_speedup" is the
//     single-store time over the critical path, and the sequential sum is
//     recorded alongside so nothing is hidden.
//   * End to end: full TIRM through the sharded coordinator, asserting the
//     allocation stays bit-identical to the single-store run (the bench
//     aborts on any divergence).
void RunShardSweep(const BenchConfig& config, JsonValue* out) {
  // Generate a SNAP-style edge list and ingest it via the "file:" path.
  const std::string edge_path = "/tmp/bench_fig6_snap.edges";
  {
    Rng gen_rng(config.seed + 909);
    const Graph generated = RMatGraph(14, 150000, gen_rng);  // 16384 nodes
    const Status saved = SaveEdgeList(generated, edge_path);
    TIRM_CHECK(saved.ok()) << saved.ToString();
  }
  Rng build_rng(config.seed + 910);
  Result<BuiltInstance> built =
      BuildNamedDataset("file:" + edge_path, config.scale, build_rng);
  TIRM_CHECK(built.ok()) << built.status().ToString();
  const ProblemInstance inst =
      built->MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
  std::printf(
      "\n--- sharded sampling plane: K = 1/2/4 shards (file: SNAP-style "
      "graph, %u nodes, %zu arcs) ---\n",
      built->graph->num_nodes(), built->graph->num_edges());

  const std::uint64_t theta = 1u << 17;  // global watermark every K grows to
  const std::vector<int> shard_counts = {1, 2, 4};
  TablePrinter t({"K", "crit path (s)", "sum (s)", "sampling speedup",
                  "tirm (s)", "wall speedup", "identical"});
  JsonValue rows = JsonValue::Array();
  double single_sampling_seconds = 0.0;
  double single_tirm_seconds = 0.0;
  std::vector<std::vector<NodeId>> baseline_seeds;
  for (const int num_shards : shard_counts) {
    // Sampling phase: same seed for every K, so the global chunk streams
    // are identical and only the partition changes.
    ShardedRrSampleStore store(
        built->graph.get(),
        {.seed = config.seed ^ 0xF1665EEDULL,
         .num_threads = config.threads},
        num_shards);
    double critical_path = 0.0;
    double sum_seconds = 0.0;
    JsonValue shard_seconds = JsonValue::Array();
    for (int k = 0; k < num_shards; ++k) {
      RrSampleStore& shard = store.shard(k);
      RrSampleStore::AdPool* pool = shard.Acquire(
          shard.SignatureForAd(inst, 0), inst.EdgeProbsForAd(0));
      WallTimer timer;
      shard.EnsureSets(pool, theta);
      const double seconds = timer.Seconds();
      critical_path = std::max(critical_path, seconds);
      sum_seconds += seconds;
      shard_seconds.Append(JsonValue::Number(seconds));
    }
    if (num_shards == 1) single_sampling_seconds = critical_path;
    const double sampling_speedup = single_sampling_seconds / critical_path;

    // End to end through the sharded coordinator.
    AllocatorConfig algo_config = config.MakeAllocatorConfig("tirm");
    algo_config.num_shards = num_shards;
    const AllocationResult run =
        RunConfigured(algo_config, inst, config.seed + 17);
    if (num_shards == 1) {
      single_tirm_seconds = run.seconds;
      baseline_seeds = run.allocation.seeds;
    }
    const bool identical = run.allocation.seeds == baseline_seeds;
    TIRM_CHECK(identical)
        << "sharded allocation diverged from the single-store path at K="
        << num_shards;
    const double wall_speedup = single_tirm_seconds / run.seconds;

    t.AddRow({TablePrinter::Int(num_shards),
              TablePrinter::Num(critical_path, 3),
              TablePrinter::Num(sum_seconds, 3),
              TablePrinter::Num(sampling_speedup, 2),
              TablePrinter::Num(run.seconds, 2),
              TablePrinter::Num(wall_speedup, 2), identical ? "yes" : "NO"});
    JsonValue row = JsonValue::Object();
    row.Set("num_shards", JsonValue::Number(num_shards));
    row.Set("shard_sampling_seconds", std::move(shard_seconds));
    row.Set("sampling_critical_path_seconds",
            JsonValue::Number(critical_path));
    row.Set("sampling_sum_seconds", JsonValue::Number(sum_seconds));
    row.Set("sampling_phase_speedup", JsonValue::Number(sampling_speedup));
    row.Set("tirm_seconds", JsonValue::Number(run.seconds));
    row.Set("tirm_wall_speedup", JsonValue::Number(wall_speedup));
    row.Set("allocation_identical", JsonValue::Bool(identical));
    rows.Append(std::move(row));
  }
  t.Print();
  std::printf(
      "(sampling speedup = single-store time / slowest shard; shards are\n"
      " separate processes in the router topology, so the slowest shard is\n"
      " the phase latency)\n");
  std::remove(edge_path.c_str());

  JsonValue section = JsonValue::Object();
  section.Set("graph", JsonValue::String("file: rmat 16384-node SNAP-style"));
  section.Set("theta", JsonValue::Number(static_cast<double>(theta)));
  section.Set("rows", std::move(rows));
  out->Set("shard_sweep", std::move(section));
}

void RunSweep(const char* title, const DatasetSpec& spec,
              const std::vector<int>& h_values,
              const std::vector<double>& budget_values, double fixed_budget,
              int fixed_h, bool include_irie, const BenchConfig& config,
              JsonValue* out) {
  Rng rng(config.seed);
  JsonValue panel = JsonValue::Object();
  panel.Set("dataset", JsonValue::String(spec.name));
  panel.Set("title", JsonValue::String(title));

  // ---- (a/c): vary h at fixed budget.
  {
    std::printf("\n--- %s: runtime vs #advertisers (budget %.0f) ---\n", title,
                fixed_budget);
    TablePrinter t({"h", "tirm (s)", "tirm seeds", "irie (s)", "irie seeds"});
    JsonValue rows = JsonValue::Array();
    for (const int h : h_values) {
      Rng build_rng = rng.Fork(static_cast<std::uint64_t>(h));
      BuiltInstance built =
          BuildDataset(spec, build_rng, /*num_ads_override=*/h, fixed_budget);
      ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0);
      AllocationResult tirm_run = RunAlgorithm("tirm", inst, config);
      std::vector<std::string> row = {
          TablePrinter::Int(h), TablePrinter::Num(tirm_run.seconds, 2),
          TablePrinter::Int(
              static_cast<long long>(tirm_run.allocation.TotalSeeds()))};
      JsonValue json_row = JsonValue::Object();
      json_row.Set("h", JsonValue::Number(h));
      json_row.Set("tirm_seconds", JsonValue::Number(tirm_run.seconds));
      json_row.Set("tirm_seeds",
                   JsonValue::Number(static_cast<double>(
                       tirm_run.allocation.TotalSeeds())));
      if (include_irie) {
        AllocationResult irie_run = RunAlgorithm("greedy-irie", inst, config);
        row.push_back(TablePrinter::Num(irie_run.seconds, 2));
        row.push_back(TablePrinter::Int(
            static_cast<long long>(irie_run.allocation.TotalSeeds())));
        json_row.Set("irie_seconds", JsonValue::Number(irie_run.seconds));
        json_row.Set("irie_seeds",
                     JsonValue::Number(static_cast<double>(
                         irie_run.allocation.TotalSeeds())));
      } else {
        row.push_back("(excluded)");
        row.push_back("-");
      }
      t.AddRow(row);
      rows.Append(std::move(json_row));
    }
    t.Print();
    panel.Set("h_sweep", std::move(rows));
  }

  // ---- (b/d): vary budget at fixed h. One dataset, budgets scaled per
  // query through AdAllocEngine — every budget point reuses the engine's
  // pooled RR samples (a budget change never invalidates a pool; only θ
  // growth tops it up).
  {
    std::printf("\n--- %s: runtime vs per-ad budget (h = %d) ---\n", title,
                fixed_h);
    TablePrinter t({"budget", "tirm (s)", "tirm seeds", "tirm sampled",
                    "tirm reused", "irie (s)", "irie seeds"});
    JsonValue rows = JsonValue::Array();
    Rng build_rng = rng.Fork(7777);
    const double base_budget = budget_values.front();
    AdAllocEngine engine(
        BuildDataset(spec, build_rng, fixed_h, base_budget),
        config.MakeEngineOptions());
    for (const double budget : budget_values) {
      const EngineQuery query{.budget_scale = budget / base_budget};
      EngineRun tirm_run = RunOnEngine(engine, "tirm", query, config);
      std::vector<std::string> row = {
          TablePrinter::Num(budget, 0),
          TablePrinter::Num(tirm_run.result.seconds, 2),
          TablePrinter::Int(static_cast<long long>(
              tirm_run.result.allocation.TotalSeeds())),
          TablePrinter::Int(
              static_cast<long long>(tirm_run.result.cache.sampled_sets)),
          TablePrinter::Int(
              static_cast<long long>(tirm_run.result.cache.reused_sets))};
      JsonValue json_row = JsonValue::Object();
      json_row.Set("budget", JsonValue::Number(budget));
      json_row.Set("tirm_seconds", JsonValue::Number(tirm_run.result.seconds));
      json_row.Set("sampled_sets",
                   JsonValue::Number(static_cast<double>(
                       tirm_run.result.cache.sampled_sets)));
      json_row.Set("reused_sets",
                   JsonValue::Number(static_cast<double>(
                       tirm_run.result.cache.reused_sets)));
      if (include_irie) {
        EngineRun irie_run = RunOnEngine(engine, "greedy-irie", query, config);
        row.push_back(TablePrinter::Num(irie_run.result.seconds, 2));
        row.push_back(TablePrinter::Int(
            static_cast<long long>(irie_run.result.allocation.TotalSeeds())));
        json_row.Set("irie_seconds",
                     JsonValue::Number(irie_run.result.seconds));
      } else {
        row.push_back("(excluded)");
        row.push_back("-");
      }
      t.AddRow(row);
      rows.Append(std::move(json_row));
    }
    t.Print();
    PrintStoreStats(engine);
    panel.Set("budget_sweep", std::move(rows));
  }
  out->Append(std::move(panel));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  // Scalability benches use the paper's eps = 0.2.
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.02,
                                              /*default_eps=*/0.2,
                                              /*default_json_out=*/
                                              "BENCH_fig6.json");
  config.Print("bench_fig6_scalability: Fig. 6 running time (DBLP / LJ shaped)");
  JsonReport report("bench_fig6_scalability", config);
  JsonValue panels = JsonValue::Array();
  WallTimer bench_timer;
  // Record the whole bench with the flight recorder; the per-stage
  // aggregate lands in the report's "profile" section. Span cost is tens
  // of nanoseconds at batch granularity — invisible next to the seconds-
  // scale rows measured here.
  obs::TraceRecorder::Global().Enable();

  // Thread-count sweep of the parallel RR-set engine (beyond the paper,
  // which is single-threaded). Override the sweep via --threads to add a
  // point at the requested count.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (const int t = config.threads;
      t > 1 && std::find(thread_counts.begin(), thread_counts.end(), t) ==
                   thread_counts.end()) {
    thread_counts.push_back(t);
  }
  RunThreadSweep(config, thread_counts, &report.root());

  // Sharded sampling plane (K = 1/2/4) on a `file:`-ingested SNAP-style
  // graph — speedup rows plus a bit-identity assertion against the
  // single-store path.
  RunShardSweep(config, &report.root());

  // DBLP (paper: budgets 5K at 317K nodes; h sweep 1..20; budget sweep to
  // 30K). Scaled: budgets scale with the graph.
  const double dblp_budget = 5000.0 * config.scale;
  RunSweep("dblp-like (Fig. 6a/6b)", DblpLike(config.scale),
           /*h_values=*/{1, 5, 10, 15},
           /*budget_values=*/
           {dblp_budget * 0.4, dblp_budget, dblp_budget * 2, dblp_budget * 4},
           /*fixed_budget=*/dblp_budget, /*fixed_h=*/5,
           /*include_irie=*/true, config, &panels);

  // LIVEJOURNAL (paper: budgets 80K at 4.8M nodes; TIRM only).
  const double lj_scale = config.scale / 10.0;
  const double lj_budget = 80000.0 * lj_scale;
  RunSweep("livejournal-like (Fig. 6c/6d)", LiveJournalLike(lj_scale),
           /*h_values=*/{1, 5, 10, 15, 20},
           /*budget_values=*/
           {lj_budget * 0.5, lj_budget, lj_budget * 2, lj_budget * 3},
           /*fixed_budget=*/lj_budget, /*fixed_h=*/5,
           /*include_irie=*/false, config, &panels);

  std::printf(
      "\nPaper reference (scale 1.0, 2.4GHz Xeon): DBLP h=1 both ~60s, h=15 "
      "TIRM 6x faster than\nGREEDY-IRIE; LJ h=1 TIRM 16 min vs IRIE 6 h; LJ "
      "h=20 TIRM ~5 h, 4649 seeds.\n");
  report.Set("panels", std::move(panels));
  report.Set("wall_seconds", JsonValue::Number(bench_timer.Seconds()));

  obs::TraceRecorder::Global().Disable();
  std::printf("\n--- pipeline profile (whole bench, by total wall time) ---\n");
  TablePrinter pt({"stage", "count", "total (ms)"});
  JsonValue profile = JsonValue::Array();
  for (const obs::StageStats& stage : obs::TraceRecorder::Global().Summary()) {
    pt.AddRow({stage.name,
               TablePrinter::Int(static_cast<long long>(stage.count)),
               TablePrinter::Num(stage.total_ms, 2)});
    JsonValue p = JsonValue::Object();
    p.Set("name", JsonValue::String(stage.name));
    p.Set("count", JsonValue::Number(static_cast<double>(stage.count)));
    p.Set("total_ms", JsonValue::Number(stage.total_ms));
    profile.Append(std::move(p));
  }
  pt.Print();
  report.Set("profile", std::move(profile));

  report.Write();
  return 0;
}
