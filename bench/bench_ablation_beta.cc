// Ablation: budget boosting (§3 Discussion).
//
// Overshooting may be more acceptable than undershooting: with boosted
// budgets B' = (1+beta)·B the host optimizes toward (1+beta)·B, trading a
// bounded amount of free service for more revenue. This bench sweeps beta
// and reports realized revenue, raw regret vs the *declared* budgets, and
// the free service given away (max(0, revenue - B)).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tirm;
  using namespace tirm::bench;
  Flags flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  BenchConfig config = BenchConfig::FromFlags(flags, /*default_scale=*/0.008);
  config.Print("bench_ablation_beta: boosted budgets B' = (1+beta)B",
               /*supports_bundle=*/true);

  Rng rng(config.seed);
  BuiltInstance built = BuildBenchInstance(config, FlixsterLike(config.scale), rng);

  TablePrinter t({"beta", "revenue", "capped revenue", "free service",
                  "raw regret vs B", "seeds"});
  for (const double beta : {0.0, 0.1, 0.25, 0.5}) {
    ProblemInstance inst = built.MakeInstance(/*kappa=*/1, /*lambda=*/0.0,
                                              beta);
    AllocationResult result = RunAlgorithm("tirm", inst, config);
    RegretReport report = EvaluateChecked(
        inst, result.allocation, config,
        static_cast<std::uint64_t>(beta * 100));
    // Measure against the *declared* budgets B_i (beta = 0 view).
    double capped_revenue = 0.0;
    double free_service = 0.0;
    double raw_regret = 0.0;
    for (int i = 0; i < inst.num_ads(); ++i) {
      const double b = inst.advertiser(i).budget;
      const double rev = report.ads[static_cast<std::size_t>(i)].revenue;
      capped_revenue += std::min(rev, b);  // the host is paid at most B_i
      free_service += std::max(0.0, rev - b);
      raw_regret += std::fabs(b - rev);
    }
    t.AddRow({TablePrinter::Num(beta, 2),
              TablePrinter::Num(report.total_revenue, 1),
              TablePrinter::Num(capped_revenue, 1),
              TablePrinter::Num(free_service, 1),
              TablePrinter::Num(raw_regret, 1),
              TablePrinter::Int(static_cast<long long>(report.total_seeds))});
  }
  t.Print();
  std::printf(
      "\nExpected: capped (billable) revenue rises with beta while free "
      "service grows slowly —\nthe boosted-budget trade-off of §3's "
      "Discussion.\n");
  return 0;
}
